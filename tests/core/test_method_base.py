"""Tests for the Method base class contract."""

import numpy as np
import pytest

from repro.api import make_method
from repro.errors import ConfigurationError, SimulationError
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import IDEALIZED_COSTS
from repro.pim.memory import MemoryRegion


class TestLifecycle:
    def test_evaluate_before_setup_raises(self):
        m = make_method("sin", "llut", density_log2=8)
        with pytest.raises(SimulationError, match="setup"):
            m.evaluate(CycleCounter(), 1.0)

    def test_evaluate_vec_before_setup_raises(self):
        m = make_method("sin", "llut", density_log2=8)
        with pytest.raises(SimulationError):
            m.evaluate_vec(np.array([1.0], dtype=np.float32))

    def test_setup_returns_self(self):
        m = make_method("sin", "llut", density_log2=8)
        assert m.setup() is m

    def test_call_sets_up_lazily(self):
        m = make_method("sin", "llut_i", density_log2=10)
        out = m(np.array([1.0], dtype=np.float32))
        assert out.shape == (1,)

    def test_setup_into_memory_region(self):
        m = make_method("sin", "llut", density_log2=8)
        region = MemoryRegion("WRAM", 64 * 1024)
        m.setup(region)
        assert region.used_bytes >= m.table_bytes()

    def test_setup_into_too_small_region(self):
        m = make_method("sin", "llut", density_log2=14)
        region = MemoryRegion("WRAM", 1024)
        with pytest.raises(Exception):
            m.setup(region)


class TestOptions:
    def test_invalid_placement(self):
        with pytest.raises(ConfigurationError, match="placement"):
            make_method("sin", "llut", density_log2=8, placement="cache")

    def test_mram_placement_charges_dma(self):
        m = make_method("sin", "llut", density_log2=8,
                        placement="mram").setup()
        tally = m.element_tally(1.0)
        assert tally.dma_transactions >= 1

    def test_wram_placement_no_dma_for_lut(self):
        m = make_method("sin", "llut", density_log2=8,
                        placement="wram").setup()
        tally = m.element_tally(1.0)
        assert tally.dma_transactions == 0

    def test_costs_threaded_through(self):
        m = make_method("sin", "llut_i", density_log2=8,
                        costs=IDEALIZED_COSTS).setup()
        assert m.element_tally(1.0).slots < 30

    def test_describe_mentions_key_facts(self):
        m = make_method("sin", "llut_i_fx", density_log2=8).setup()
        text = m.describe()
        assert "llut_i_fx" in text
        assert "sin" in text
        assert "fixed-point" in text


class TestMeasurementHelpers:
    def test_mean_slots_averages(self, sine_inputs):
        m = make_method("sin", "llut", density_log2=8).setup()
        slots = m.mean_slots(sine_inputs[:16])
        single = m.element_tally(float(sine_inputs[0])).slots
        assert slots == pytest.approx(single, rel=0.2)

    def test_mean_slots_empty_raises(self):
        m = make_method("sin", "llut", density_log2=8).setup()
        with pytest.raises(ConfigurationError):
            m.mean_slots(np.array([], dtype=np.float32))
