"""Bit-exactness tests for the software ldexp/frexp against C99 semantics."""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ldexp import frexpf, frexpf_vec, ldexpf, ldexpf_vec


def _ref_ldexpf(x, n):
    """Reference: float64 ldexp rounded once to float32 (exact for ldexpf)."""
    return np.float32(math.ldexp(float(np.float32(x)), n))


class TestLdexpfSpecials:
    def test_zero_preserved(self):
        assert ldexpf(0.0, 100) == np.float32(0.0)

    def test_signed_zero_preserved(self):
        out = ldexpf(-0.0, 5)
        assert out == 0.0 and np.signbit(out)

    def test_infinity_preserved(self):
        assert ldexpf(np.float32(np.inf), -10) == np.float32(np.inf)

    def test_nan_preserved(self):
        assert np.isnan(ldexpf(np.float32(np.nan), 3))

    def test_overflow_to_infinity(self):
        assert ldexpf(1.0, 200) == np.float32(np.inf)
        assert ldexpf(-1.0, 200) == np.float32(-np.inf)

    def test_underflow_to_zero(self):
        out = ldexpf(1.0, -200)
        assert out == 0.0 and not np.signbit(out)

    def test_underflow_to_signed_zero(self):
        out = ldexpf(-1.0, -200)
        assert out == 0.0 and np.signbit(out)

    def test_gradual_underflow(self):
        # 1.0 * 2^-130 is subnormal but nonzero.
        out = ldexpf(1.0, -130)
        assert out == _ref_ldexpf(1.0, -130)
        assert out > 0

    def test_subnormal_input_scaled_up(self):
        tiny = np.float32(1e-41)
        assert ldexpf(tiny, 30) == _ref_ldexpf(tiny, 30)

    def test_round_to_nearest_even_on_underflow(self):
        # A value whose shifted-out remainder is exactly half: ties-to-even.
        x = np.float32(1.5)
        for n in (-149, -150, -151):
            assert ldexpf(x, n) == _ref_ldexpf(x, n), n


class TestLdexpfExhaustiveGrid:
    def test_grid(self):
        values = [1.0, -1.0, 1.9999999, 0.5, 3.1415927, 1e-38, 1.2e-40,
                  6.5e-42, 3.4e38, -7.7e-12]
        for x in values:
            for n in range(-170, 170, 7):
                assert ldexpf(x, n) == _ref_ldexpf(x, n), (x, n)

    @given(
        st.floats(width=32, allow_nan=False),
        st.integers(min_value=-300, max_value=300),
    )
    def test_property_matches_reference(self, x, n):
        got = ldexpf(x, n)
        ref = _ref_ldexpf(x, n)
        assert got == ref or (np.isnan(got) and np.isnan(ref))
        # Sign of zero results must match too.
        if got == 0:
            assert np.signbit(got) == np.signbit(ref)


class TestFrexpf:
    def test_one(self):
        m, e = frexpf(1.0)
        assert (m, e) == (np.float32(0.5), 1)

    def test_pi(self):
        m, e = frexpf(3.1415927)
        rm, re = math.frexp(float(np.float32(3.1415927)))
        assert float(m) == rm and e == re

    def test_zero(self):
        m, e = frexpf(0.0)
        assert m == 0.0 and e == 0

    def test_inf(self):
        m, e = frexpf(np.float32(np.inf))
        assert np.isinf(m) and e == 0

    def test_subnormal(self):
        x = np.float32(1e-41)
        m, e = frexpf(x)
        rm, re = math.frexp(float(x))
        assert float(m) == rm and e == re

    @given(st.floats(width=32, allow_nan=False, allow_infinity=False))
    def test_property_reconstruction(self, x):
        m, e = frexpf(x)
        assert ldexpf(m, e) == np.float32(x)
        if x != 0:
            assert 0.5 <= abs(float(m)) < 1.0

    @given(st.floats(width=32, allow_nan=False, allow_infinity=False))
    def test_property_matches_math(self, x):
        m, e = frexpf(x)
        rm, re = math.frexp(float(np.float32(x)))
        assert float(m) == rm and e == re


class TestVectorizedTwins:
    def test_ldexp_vec_matches_scalar(self, rng):
        xs = rng.uniform(-1e6, 1e6, 512).astype(np.float32)
        ns = rng.integers(-60, 60, 512)
        out = ldexpf_vec(xs, ns)
        for i in range(0, 512, 17):
            assert out[i] == ldexpf(xs[i], int(ns[i]))

    def test_frexp_vec_matches_scalar(self, rng):
        xs = rng.uniform(-1e6, 1e6, 512).astype(np.float32)
        ms, es = frexpf_vec(xs)
        for i in range(0, 512, 17):
            m, e = frexpf(xs[i])
            assert ms[i] == m and es[i] == e
