"""Property tests: measured method accuracy tracks the analytic error model.

For every (function, precision) pair tried, the measured RMSE must land
within a small constant factor of the spacing-theory prediction — this
cross-validates the table construction, address generation, and the model
itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.error_model import (
    float32_floor,
    predict_cordic_rmse,
    predict_interpolated_lut_rmse,
    predict_lut_rmse,
    rms_derivative,
)
from repro.core.functions.registry import get_function

_F32 = np.float32


def _inputs(spec, n=4096, seed=9):
    rng = np.random.default_rng(seed)
    lo, hi = spec.natural_range
    return rng.uniform(lo, hi, n).astype(_F32)


class TestDerivatives:
    def test_sin_first_derivative_rms(self):
        # rms(cos) over [0, 2pi) = 1/sqrt(2).
        spec = get_function("sin")
        assert rms_derivative(spec.reference, spec.natural_range, 1) == \
            pytest.approx(1 / np.sqrt(2), rel=1e-3)

    def test_sin_second_derivative_rms(self):
        spec = get_function("sin")
        assert rms_derivative(spec.reference, spec.natural_range, 2) == \
            pytest.approx(1 / np.sqrt(2), rel=1e-2)

    def test_exp_derivatives_equal_function(self):
        spec = get_function("exp")
        d1 = rms_derivative(spec.reference, (0.0, 0.69), 1)
        d2 = rms_derivative(spec.reference, (0.0, 0.69), 2)
        assert d1 == pytest.approx(d2, rel=1e-2)

    def test_invalid_order(self):
        spec = get_function("sin")
        with pytest.raises(ValueError):
            rms_derivative(spec.reference, spec.natural_range, 3)

    def test_float32_floor_scale(self):
        spec = get_function("sin")
        floor = float32_floor(spec.reference, spec.natural_range)
        assert 1e-9 < floor < 1e-7


@settings(max_examples=8, deadline=None)
@given(density=st.integers(min_value=8, max_value=16))
def test_llut_matches_model(density):
    spec = get_function("sin")
    m = make_method("sin", "llut", density_log2=density).setup()
    rep = measure(m.evaluate_vec, spec.reference, _inputs(spec))
    predicted = predict_lut_rmse(spec, 2.0 ** -density)
    assert predicted / 3 < rep.rmse < predicted * 3


@settings(max_examples=6, deadline=None)
@given(density=st.integers(min_value=5, max_value=11))
def test_llut_i_matches_model(density):
    spec = get_function("sin")
    m = make_method("sin", "llut_i", density_log2=density).setup()
    rep = measure(m.evaluate_vec, spec.reference, _inputs(spec))
    predicted = predict_interpolated_lut_rmse(spec, 2.0 ** -density)
    assert predicted / 4 < rep.rmse < predicted * 4


@pytest.mark.parametrize("function,density", [
    ("exp", 12), ("log", 12), ("tanh", 10), ("sigmoid", 8), ("gelu", 10),
])
def test_model_across_functions(function, density):
    spec = get_function(function)
    m = make_method(function, "llut", density_log2=density).setup()
    rep = measure(m.evaluate_vec, spec.reference, _inputs(spec))
    predicted = predict_lut_rmse(spec, 2.0 ** -density)
    assert predicted / 4 < rep.rmse < predicted * 4, function


@pytest.mark.parametrize("iterations", [10, 14, 18])
def test_cordic_matches_model(iterations):
    spec = get_function("sin")
    m = make_method("sin", "cordic", iterations=iterations).setup()
    rep = measure(m.evaluate_vec, spec.reference, _inputs(spec))
    predicted = predict_cordic_rmse(spec, iterations)
    assert predicted / 5 < rep.rmse < predicted * 5


def test_mlut_density_equivalence():
    """M-LUT with the same cell width as an L-LUT matches its accuracy."""
    spec = get_function("sin")
    xs = _inputs(spec)
    llut = make_method("sin", "llut", density_log2=10).setup()
    # Same spacing: (size-1)/range = 2^10 -> size = range * 2^10 + 1.
    size = int(np.ceil((spec.natural_range[1]) * 2 ** 10)) + 1
    mlut = make_method("sin", "mlut", size=size).setup()
    e_l = measure(llut.evaluate_vec, spec.reference, xs).rmse
    e_m = measure(mlut.evaluate_vec, spec.reference, xs).rmse
    assert e_m == pytest.approx(e_l, rel=0.3)
