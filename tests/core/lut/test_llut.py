"""Tests for the LDEXP-based fuzzy LUT (L-LUT), float and fixed-point."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import TWO_PI, get_function
from repro.core.lut.llut import _LLUTGeometry
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _llut(function="sin", density_log2=10, variant="llut", **kw):
    kw.setdefault("assume_in_range", True)
    return make_method(function, variant, density_log2=density_log2, **kw).setup()


class TestMagicAddressGeneration:
    """The magic constant must compute exactly round((x - p) * 2^n)."""

    @settings(max_examples=200)
    @given(st.floats(min_value=0.0, max_value=6.28125, width=32),
           st.integers(min_value=0, max_value=16))
    def test_magic_equals_round(self, x, n):
        spec = get_function("sin")
        geom = _LLUTGeometry(spec, n, None)
        assert geom.magic_ok
        t = _F32(_F32(x) + geom.c)
        idx = int(np.asarray(t).view(np.uint32)) & ((1 << 22) - 1)
        # Reference: round-half-even of (x - p) * 2^n, which is what the
        # float add's rounding performs.
        exact = (float(_F32(x)) - geom.p) * 2.0 ** n
        ref = int(np.round(exact))  # numpy rounds half to even, like IEEE
        assert idx in (ref, max(0, ref - 1), ref + 1)
        # Half-way cases aside, the index is exactly the rounded value.
        if abs(exact - round(exact)) > 1e-6:
            assert idx == ref

    def test_magic_validity_flag(self):
        spec = get_function("sin")
        assert _LLUTGeometry(spec, 10, None).magic_ok
        assert not _LLUTGeometry(spec, 21, None).magic_ok  # 2pi > 2^(22-21)

    def test_fallback_path_still_correct(self, sine_inputs):
        spec = get_function("sin")
        m = _llut(density_log2=21)  # forces the ldexp+round fallback
        rep = measure(m.evaluate_vec, spec.reference, sine_inputs)
        assert rep.rmse < 1e-6


class TestOperationCounts:
    def test_plain_uses_no_multiplies(self):
        tally = _llut().element_tally(1.0)
        assert tally.count("fmul") == 0
        assert tally.count("imul") == 0
        assert tally.count("imul64") == 0

    def test_interpolated_uses_exactly_one_float_multiply(self):
        tally = _llut(variant="llut_i").element_tally(1.0)
        assert tally.count("fmul") == 1

    def test_fixed_interpolated_uses_integer_multiply(self):
        tally = _llut(variant="llut_i_fx").element_tally(1.0)
        assert tally.count("fmul") == 0
        assert tally.count("imul64") == 1

    def test_llut_much_cheaper_than_mlut(self, sine_inputs):
        llut = _llut(density_log2=12)
        mlut = make_method("sin", "mlut", size=4096,
                           assume_in_range=True).setup()
        ratio = llut.mean_slots(sine_inputs[:16]) / mlut.mean_slots(sine_inputs[:16])
        assert ratio < 0.35  # the paper reports ~80% reduction

    def test_cycles_flat_across_densities(self, sine_inputs):
        a = _llut(density_log2=8).mean_slots(sine_inputs[:16])
        b = _llut(density_log2=16).mean_slots(sine_inputs[:16])
        assert a == b


class TestAccuracy:
    def test_plain_error_halves_per_density_step(self, sine_inputs):
        spec = get_function("sin")
        e10 = measure(_llut(density_log2=10).evaluate_vec, spec.reference,
                      sine_inputs).rmse
        e13 = measure(_llut(density_log2=13).evaluate_vec, spec.reference,
                      sine_inputs).rmse
        assert e10 / e13 == pytest.approx(8.0, rel=0.2)

    def test_interpolated_reaches_float32_floor(self, sine_inputs):
        spec = get_function("sin")
        m = _llut(variant="llut_i", density_log2=13)
        rep = measure(m.evaluate_vec, spec.reference, sine_inputs)
        assert rep.rmse < 5e-8

    def test_fixed_matches_float_accuracy(self, sine_inputs):
        spec = get_function("sin")
        ef = measure(_llut(variant="llut_i", density_log2=11).evaluate_vec,
                     spec.reference, sine_inputs).rmse
        ex = measure(_llut(variant="llut_i_fx", density_log2=11).evaluate_vec,
                     spec.reference, sine_inputs).rmse
        assert ex == pytest.approx(ef, rel=0.5)

    def test_grid_points_near_exact(self):
        m = _llut(density_log2=8)
        ctx = CycleCounter()
        x = 1.0 + 2.0 ** -8 * 5  # exactly on the table grid
        assert float(m.evaluate(ctx, x)) == pytest.approx(math.sin(x), abs=1e-7)


class TestOutOfRangeGuards:
    def test_below_interval_clamps_to_left_edge(self):
        m = make_method("exp", "llut_i", density_log2=10,
                        interval=(-4.0, 0.0), assume_in_range=True).setup()
        ctx = CycleCounter()
        out = float(m.evaluate(ctx, -100.0))
        assert out == pytest.approx(math.exp(-4.0), rel=1e-3)

    def test_above_interval_clamps_to_right_edge(self):
        m = make_method("exp", "llut_i", density_log2=10,
                        interval=(-4.0, 0.0), assume_in_range=True).setup()
        ctx = CycleCounter()
        out = float(m.evaluate(ctx, 50.0))
        assert out == pytest.approx(1.0, rel=1e-2)

    def test_non_interpolated_guards(self):
        m = make_method("exp", "llut", density_log2=12,
                        interval=(-4.0, 0.0), assume_in_range=True).setup()
        ctx = CycleCounter()
        assert float(m.evaluate(ctx, -1e6)) == pytest.approx(
            math.exp(-4.0), rel=1e-2
        )


class TestFixedPointRaw:
    def test_raw_roundtrip_matches_float_entry(self):
        m = _llut(variant="llut_i_fx", density_log2=12)
        ctx = CycleCounter()
        raw_in = int(round(1.5 * 2**28))
        raw_out = m.core_eval_raw(ctx, raw_in)
        assert raw_out / 2**28 == pytest.approx(math.sin(1.5), abs=1e-6)

    def test_raw_vec_matches_scalar(self, rng):
        m = _llut(variant="llut_i_fx", density_log2=10)
        xs = rng.uniform(0, TWO_PI, 64)
        raws = np.round(xs * 2**28).astype(np.int64)
        ctx = CycleCounter()
        scalar = np.array([m.core_eval_raw(ctx, int(r)) for r in raws])
        np.testing.assert_array_equal(scalar, m.core_eval_raw_vec(raws))

    def test_density_exceeding_frac_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            make_method("sin", "llut_fx", density_log2=29)

    def test_interval_outside_format_rejected(self):
        with pytest.raises(ConfigurationError):
            make_method("exp", "llut_fx", density_log2=10,
                        interval=(0.0, 100.0))


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("variant", ["llut", "llut_i", "llut_fx",
                                         "llut_i_fx"])
    def test_bit_exact(self, variant, sine_inputs):
        m = _llut(variant=variant, density_log2=9)
        ctx = CycleCounter()
        sample = sine_inputs[:64]
        scalar = np.array([m.evaluate(ctx, float(x)) for x in sample],
                          dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(sample))

    def test_bit_exact_fallback_density(self, sine_inputs):
        m = _llut(variant="llut", density_log2=21)
        ctx = CycleCounter()
        sample = sine_inputs[:32]
        scalar = np.array([m.evaluate(ctx, float(x)) for x in sample],
                          dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(sample))
