"""Tests for tangent via sine/cosine tables plus a divide (Section 4.2.4)."""

import math

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import UPMEM_COSTS

_F32 = np.float32


def _tan(method="llut_i", **params):
    params.setdefault("assume_in_range", True)
    return make_method("tan", method, **params).setup()


class TestStructure:
    def test_is_quotient_wrapper(self):
        from repro.core.lut.tan import TanQuotientLUT
        m = _tan(density_log2=10)
        assert isinstance(m, TanQuotientLUT)
        assert m.sin_m.spec.name == "sin"
        assert m.cos_m.spec.name == "cos"

    def test_variant_flags_mirror_inner(self):
        assert _tan("llut_i", density_log2=8).interpolated
        assert not _tan("llut", density_log2=8).interpolated

    def test_memory_is_both_tables(self):
        m = _tan(density_log2=10)
        assert m.table_bytes() == m.sin_m.table_bytes() + m.cos_m.table_bytes()

    def test_exactly_one_divide(self):
        tally = _tan(density_log2=10).element_tally(1.0)
        assert tally.count("fdiv") == 1

    def test_cost_is_two_lookups_plus_divide(self):
        m = _tan(density_log2=10)
        sin_only = make_method("sin", "llut_i", density_log2=10,
                               assume_in_range=True).setup()
        expected = 2 * sin_only.element_tally(1.0).slots + UPMEM_COSTS.fp_div
        assert m.element_tally(1.0).slots == pytest.approx(expected, rel=0.1)


class TestAccuracy:
    def test_values_away_from_poles(self):
        m = _tan(density_log2=12)
        ctx = CycleCounter()
        for x in [0.1, 0.7, 2.0, 3.5, 5.0]:
            assert float(m.evaluate(ctx, x)) == pytest.approx(
                math.tan(x), rel=1e-4
            ), x

    def test_relative_accuracy_near_poles(self, rng):
        """Absolute error explodes at the poles but ULP error stays sane —
        the quotient inherits sine/cosine's relative accuracy."""
        spec = get_function("tan")
        xs = rng.uniform(0, 2 * np.pi, 4096).astype(_F32)
        m = _tan(density_log2=12)
        rep = measure(m.evaluate_vec, spec.reference, xs)
        assert rep.mean_ulp_error < 50

    def test_mlut_variant_works(self, rng):
        spec = get_function("tan")
        xs = rng.uniform(0.1, 1.4, 512).astype(_F32)
        m = _tan("mlut_i", size=8193)
        rep = measure(m.evaluate_vec, spec.reference, xs)
        assert rep.rmse < 1e-4


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("method", ["llut", "llut_i", "mlut_i"])
    def test_bit_exact(self, method, rng):
        params = {"size": 1025} if method.startswith("mlut") else \
            {"density_log2": 9}
        m = _tan(method, **params)
        xs = rng.uniform(0, 2 * np.pi, 48).astype(_F32)
        ctx = CycleCounter()
        scalar = np.array([m.evaluate(ctx, float(x)) for x in xs], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(xs))
