"""Tests for the curvature-adaptive segmented L-LUT (extension)."""

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.core.lut.slut import SegmentedLLUT
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _slut(function="atanh", target=1e-7, seg_bits=4, **kw):
    kw.setdefault("assume_in_range", False)
    return make_method(function, "slut_i", target_rmse=target,
                       seg_bits=seg_bits, **kw).setup()


class TestAccuracyTargeting:
    @pytest.mark.parametrize("function", ["atanh", "gelu", "log", "sigmoid"])
    def test_meets_target_within_small_factor(self, function, rng):
        spec = get_function(function)
        xs = rng.uniform(*spec.bench_domain, 4096).astype(_F32)
        m = _slut(function, target=1e-7)
        rep = measure(m.evaluate_vec, spec.reference, xs)
        assert rep.rmse < 3e-7, function  # rms-based sizing, ~2x slack

    def test_tighter_target_means_bigger_table(self):
        coarse = _slut("atanh", target=1e-5)
        fine = _slut("atanh", target=1e-8)
        assert fine.table_bytes() > 2 * coarse.table_bytes()

    def test_density_follows_curvature(self):
        """atanh: curvature explodes near 1, so the last segments must be
        far denser than the first ones."""
        m = _slut("atanh", target=1e-7)
        assert m._densities[-2] > m._densities[0] + 3

    def test_uniform_curvature_gets_uniform_density(self):
        m = _slut("sin", target=1e-7)
        inner = m._densities[1:-2]  # edge segments see the clamp
        assert inner.max() - inner.min() <= 1


class TestMemoryAdvantage:
    def test_beats_uniform_llut_on_curvature_concentrated_function(self, rng):
        """The headline: equal accuracy, a fraction of the memory."""
        spec = get_function("atanh")
        xs = rng.uniform(-0.95, 0.95, 4096).astype(_F32)
        seg = _slut("atanh", target=1e-7)
        e_seg = measure(seg.evaluate_vec, spec.reference, xs).rmse

        # Find the uniform density reaching the same accuracy.
        for density in range(8, 24):
            uni = make_method("atanh", "llut_i", density_log2=density,
                              assume_in_range=False).setup()
            if measure(uni.evaluate_vec, spec.reference, xs).rmse <= e_seg:
                break
        assert seg.table_bytes() < 0.5 * uni.table_bytes()

    def test_no_advantage_for_uniform_curvature(self, rng):
        """sin's curvature is flat; segmentation only adds overhead."""
        spec = get_function("sin")
        xs = rng.uniform(0, 2 * np.pi, 4096).astype(_F32)
        seg = _slut("sin", target=1e-7)
        uni = make_method("sin", "llut_i", density_log2=10,
                          assume_in_range=False).setup()
        e_uni = measure(uni.evaluate_vec, spec.reference, xs).rmse
        assert seg.table_bytes() > 0.5 * uni.table_bytes()
        assert e_uni < 3e-7


class TestCostStructure:
    def test_two_magic_adds_one_descriptor(self):
        m = _slut("gelu", assume_in_range=True)
        tally = m.element_tally(1.0)
        assert tally.count("fadd") >= 2       # both magic adds
        assert tally.count("fmul") == 1       # only the interpolation
        # ~110 slots over the flat interpolated L-LUT.
        flat = make_method("gelu", "llut_i", density_log2=11,
                           assume_in_range=True).setup()
        extra = tally.slots - flat.element_tally(1.0).slots
        assert 0 < extra < 300

    def test_cost_flat_across_targets(self, rng):
        xs = rng.uniform(0.1, 0.9, 8).astype(_F32)
        a = _slut("atanh", target=1e-5).mean_slots(xs)
        b = _slut("atanh", target=1e-8).mean_slots(xs)
        assert a == pytest.approx(b, rel=0.05)


class TestValidation:
    def test_bad_parameters(self):
        spec = get_function("gelu")
        with pytest.raises(ConfigurationError):
            SegmentedLLUT(spec, seg_bits=0)
        with pytest.raises(ConfigurationError):
            SegmentedLLUT(spec, target_rmse=0.0)

    def test_tan_unsupported(self):
        from repro.errors import UnsupportedFunctionError
        with pytest.raises(UnsupportedFunctionError):
            make_method("tan", "slut_i")


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("function", ["atanh", "gelu", "sin", "log"])
    def test_bit_exact(self, function, rng):
        spec = get_function(function)
        xs = rng.uniform(*spec.bench_domain, 64).astype(_F32)
        m = _slut(function)
        ctx = CycleCounter()
        scalar = np.array([m.evaluate(ctx, float(x)) for x in xs], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(xs))
