"""Tests for the combined DL-LUT (L-LUT near zero + D-LUT beyond)."""

import math

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.errors import UnsupportedFunctionError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _dllut(function="tanh", interpolated=True, **kw):
    kw.setdefault("assume_in_range", True)
    kw.setdefault("mant_bits", 8)
    kw.setdefault("e_min", -8)
    name = "dllut_i" if interpolated else "dllut"
    return make_method(function, name, **kw).setup()


class TestGapCoverage:
    def test_fixes_dlut_gap_near_zero(self):
        """The whole point of DL-LUT (Section 3.3.1)."""
        dlut = make_method("tanh", "dlut", mant_bits=8, e_min=-8,
                           assume_in_range=True).setup()
        dllut = _dllut(interpolated=False)
        ctx = CycleCounter()
        x = 2.0 ** -12  # far below e_min
        err_d = abs(float(dlut.evaluate(ctx, x)) - math.tanh(x))
        err_dl = abs(float(dllut.evaluate(ctx, x)) - math.tanh(x))
        assert err_dl < err_d / 10

    def test_accuracy_across_boundary(self, rng):
        m = _dllut()
        boundary = 2.0 ** -8
        xs = rng.uniform(boundary * 0.25, boundary * 4, 512).astype(_F32)
        rep = measure(m.evaluate_vec, get_function("tanh").reference, xs)
        assert rep.rmse < 1e-7

    def test_low_table_density_matches_first_dlut_cell(self):
        m = _dllut()
        # L-LUT spacing 2^-(m - e_min) equals the first D-LUT cell width.
        assert m.low.geom.step == pytest.approx(
            2.0 ** -(8 - (-8)) , rel=1e-12
        )

    def test_dispatch_boundary(self):
        m = _dllut()
        ctx = CycleCounter()
        below = float(m.evaluate(ctx, 2.0 ** -8 * 0.99))
        above = float(m.evaluate(ctx, 2.0 ** -8 * 1.01))
        assert below == pytest.approx(math.tanh(2.0 ** -8 * 0.99), rel=1e-3)
        assert above == pytest.approx(math.tanh(2.0 ** -8 * 1.01), rel=1e-3)


class TestCostAndMemory:
    def test_one_extra_compare_over_parts(self):
        m = _dllut()
        tally_high = m.element_tally(1.0)
        high_alone = m.high.element_tally(1.0)
        # DL-LUT = dispatch compare + branch + the D-LUT path (plus the
        # method wrapper's reduction, identical for both here).
        assert tally_high.slots >= high_alone.slots

    def test_memory_is_sum_of_parts(self):
        m = _dllut()
        assert m.table_bytes() == m.low.table_bytes() + m.high.table_bytes()

    def test_host_entries_sum(self):
        m = _dllut()
        assert m.host_entries() == m.low.entries + m.high.entries


class TestAccuracy:
    @pytest.mark.parametrize("function", ["tanh", "gelu", "sigmoid", "cndf"])
    def test_activation_functions(self, function, rng):
        spec = get_function(function)
        lo, hi = spec.bench_domain
        xs = rng.uniform(lo, hi, 1024).astype(_F32)
        m = _dllut(function, assume_in_range=False)
        rep = measure(m.evaluate_vec, spec.reference, xs)
        assert rep.rmse < 2e-6, function

    def test_paper_claim_fast_for_activations(self, rng):
        """Key Takeaway 4: D-LUT/DL-LUT beat sine's interpolated L-LUT
        pipeline for activation functions."""
        xs_tanh = rng.uniform(-8, 8, 16).astype(_F32)
        xs_sin = rng.uniform(0, 100, 16).astype(_F32)
        dllut = _dllut("tanh", assume_in_range=False)
        llut_sin = make_method("sin", "llut_i", density_log2=12,
                               assume_in_range=False).setup()
        assert dllut.mean_slots(xs_tanh) < 0.7 * llut_sin.mean_slots(xs_sin)


class TestSupport:
    def test_periodic_rejected(self):
        with pytest.raises(UnsupportedFunctionError):
            make_method("cos", "dllut_i")


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("interp", [False, True])
    def test_bit_exact(self, interp, rng):
        m = _dllut(interpolated=interp, assume_in_range=False)
        xs = np.concatenate([
            rng.uniform(-9, 9, 48),
            rng.uniform(-2.0 ** -8, 2.0 ** -8, 16),  # straddle the boundary
        ]).astype(_F32)
        ctx = CycleCounter()
        scalar = np.array([m.evaluate(ctx, float(x)) for x in xs], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(xs))
