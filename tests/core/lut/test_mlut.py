"""Tests for the multiplication-based fuzzy LUT (M-LUT)."""

import math

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _mlut(function="sin", size=1024, interpolated=False, **kw):
    kw.setdefault("assume_in_range", True)
    name = "mlut_i" if interpolated else "mlut"
    return make_method(function, name, size=size, **kw).setup()


class TestAccuracyScaling:
    def test_error_scales_inverse_with_size(self, sine_inputs):
        spec = get_function("sin")
        e_small = measure(_mlut(size=1024).evaluate_vec, spec.reference,
                          sine_inputs).rmse
        e_big = measure(_mlut(size=8192).evaluate_vec, spec.reference,
                        sine_inputs).rmse
        assert e_small / e_big == pytest.approx(8.0, rel=0.2)

    def test_interpolated_error_scales_inverse_square(self, sine_inputs):
        spec = get_function("sin")
        e_small = measure(_mlut(size=257, interpolated=True).evaluate_vec,
                          spec.reference, sine_inputs).rmse
        e_big = measure(_mlut(size=1025, interpolated=True).evaluate_vec,
                        spec.reference, sine_inputs).rmse
        assert e_small / e_big == pytest.approx(16.0, rel=0.3)

    def test_interpolation_beats_plain_at_same_size(self, sine_inputs):
        spec = get_function("sin")
        plain = measure(_mlut(size=1024).evaluate_vec, spec.reference,
                        sine_inputs).rmse
        interp = measure(_mlut(size=1024, interpolated=True).evaluate_vec,
                         spec.reference, sine_inputs).rmse
        assert interp < plain / 50


class TestOperationCounts:
    def test_plain_uses_one_multiply(self):
        tally = _mlut().element_tally(1.0)
        assert tally.count("fmul") == 1

    def test_interpolated_uses_two_multiplies(self):
        tally = _mlut(interpolated=True).element_tally(1.0)
        assert tally.count("fmul") == 2

    def test_cycles_independent_of_size(self, sine_inputs):
        small = _mlut(size=64).mean_slots(sine_inputs[:16])
        big = _mlut(size=65536).mean_slots(sine_inputs[:16])
        assert small == big


class TestEdges:
    def test_exact_at_interval_ends(self):
        m = _mlut("sin", size=4097)
        ctx = CycleCounter()
        assert abs(float(m.evaluate(ctx, 0.0))) < 1e-7

    def test_clamps_below_interval(self):
        m = _mlut("sin", size=256)
        ctx = CycleCounter()
        out = m.evaluate(ctx, -0.5)  # out of table: clamps to entry 0
        assert abs(float(out)) < 0.05

    def test_clamps_above_interval(self):
        m = _mlut("sin", size=256)
        ctx = CycleCounter()
        out = m.evaluate(ctx, 7.5)
        assert abs(float(out) - math.sin(2 * math.pi)) < 0.05

    def test_interpolated_right_edge(self):
        m = _mlut("sin", size=513, interpolated=True)
        ctx = CycleCounter()
        hi = m.hi
        out = float(m.evaluate(ctx, hi * 0.999999))
        assert out == pytest.approx(math.sin(hi * 0.999999), abs=1e-4)


class TestValidation:
    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            make_method("sin", "mlut", size=1)

    def test_degenerate_interval(self):
        with pytest.raises(ConfigurationError):
            make_method("sin", "mlut", size=16, interval=(1.0, 1.0))

    def test_memory_accounting(self):
        m = _mlut(size=1000)
        assert m.table_bytes() == 1000 * 4
        assert m.host_entries() == 1000


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("interp", [False, True])
    def test_bit_exact(self, interp, sine_inputs):
        m = _mlut(size=777, interpolated=interp)
        ctx = CycleCounter()
        sample = sine_inputs[:64]
        scalar = np.array([m.evaluate(ctx, float(x)) for x in sample], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(sample))

    def test_custom_interval(self, rng):
        m = make_method("exp", "mlut_i", size=1001, interval=(-2.0, 2.0),
                        assume_in_range=True).setup()
        xs = rng.uniform(-2, 2, 64).astype(_F32)
        ctx = CycleCounter()
        scalar = np.array([m.evaluate(ctx, float(x)) for x in xs], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(xs))
