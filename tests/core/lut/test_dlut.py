"""Tests for the direct float-conversion LUT (D-LUT)."""

import math

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.core.lut.dlut import _DLUTGeometry
from repro.errors import ConfigurationError, UnsupportedFunctionError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _dlut(function="tanh", mant_bits=8, interpolated=False, **kw):
    kw.setdefault("assume_in_range", True)
    name = "dlut_i" if interpolated else "dlut"
    return make_method(function, name, mant_bits=mant_bits, **kw).setup()


class TestGeometry:
    def test_cells_count(self):
        g = _DLUTGeometry(get_function("tanh"), 8, -14, 3, None)
        assert g.cells == (3 - (-14)) << 8

    def test_edges_are_powers_within_binades(self):
        g = _DLUTGeometry(get_function("tanh"), 2, -2, 2, None)
        # First cell left edge is exactly 2^e_min.
        assert g.edge(np.array([0]))[0] == 0.25
        # One binade spans 2^mant_bits cells.
        assert g.edge(np.array([4]))[0] == 0.5

    def test_cell_spacing_doubles_per_binade(self):
        g = _DLUTGeometry(get_function("tanh"), 4, -4, 4, None)
        e = g.edge(np.arange(g.cells + 1))
        widths = np.diff(e)
        # Width in binade k+1 is twice the width in binade k.
        assert widths[20] == pytest.approx(2 * widths[4])

    def test_e_min_limits(self):
        with pytest.raises(ConfigurationError):
            _DLUTGeometry(get_function("tanh"), 8, -130, 3, None)
        with pytest.raises(ConfigurationError):
            _DLUTGeometry(get_function("tanh"), 8, 5, 3, None)

    def test_mant_bits_limits(self):
        with pytest.raises(ConfigurationError):
            _DLUTGeometry(get_function("tanh"), 24, -14, 3, None)


class TestAddressing:
    def test_index_is_bit_slice(self):
        m = _dlut(mant_bits=8)
        g = m.geom
        x = _F32(1.37)
        bits = int(np.asarray(x).view(np.uint32))
        expected = (bits >> g.shift) - g.offset
        ctx = CycleCounter()
        m.evaluate(ctx, float(x))
        # Check through the vector path (no clamping for in-range x).
        idx = (np.array([x]).view(np.uint32).astype(np.int64) >> g.shift) - g.offset
        assert idx[0] == expected

    def test_no_float_arithmetic_plain(self):
        tally = _dlut().element_tally(1.0)
        assert tally.count("fmul") == 0
        assert tally.count("fadd") == 0
        assert tally.count("fsub") == 0

    def test_interpolated_one_multiply(self):
        tally = _dlut(interpolated=True).element_tally(1.0)
        assert tally.count("fmul") == 1

    def test_plain_is_extremely_cheap(self, rng):
        m = _dlut()
        xs = rng.uniform(0, 8, 16).astype(_F32)
        assert m.mean_slots(xs) < 20


class TestAccuracy:
    def test_tanh_interpolated(self, rng):
        xs = rng.uniform(-8, 8, 2048).astype(_F32)
        m = _dlut(mant_bits=8, interpolated=True, assume_in_range=False)
        rep = measure(m.evaluate_vec, get_function("tanh").reference, xs)
        assert rep.rmse < 1e-6

    def test_gelu_interpolated(self, rng):
        xs = rng.uniform(-8, 8, 2048).astype(_F32)
        m = _dlut("gelu", mant_bits=8, interpolated=True,
                  assume_in_range=False)
        rep = measure(m.evaluate_vec, get_function("gelu").reference, xs)
        assert rep.rmse < 1e-6

    def test_denser_mantissa_improves_accuracy(self, rng):
        xs = rng.uniform(0.001, 8, 2048).astype(_F32)
        ref = get_function("tanh").reference
        e4 = measure(_dlut(mant_bits=4).evaluate_vec, ref, xs).rmse
        e8 = measure(_dlut(mant_bits=8).evaluate_vec, ref, xs).rmse
        assert e8 < e4 / 8

    def test_gap_below_e_min(self):
        # The documented D-LUT weakness: inputs below 2^e_min clamp.
        m = _dlut(mant_bits=8, e_min=-4)
        ctx = CycleCounter()
        out = float(m.evaluate(ctx, 2.0 ** -10))
        # The true tanh is ~2^-10; the clamp returns the first cell value
        # (~tanh(2^-4)), an error of ~0.06.
        assert out == pytest.approx(math.tanh(2.0 ** -4), rel=0.1)

    def test_saturating_tail_clamps_high(self):
        m = _dlut(mant_bits=8)
        ctx = CycleCounter()
        assert float(m.evaluate(ctx, 100.0)) == pytest.approx(1.0, abs=1e-3)


class TestSupport:
    def test_periodic_functions_rejected(self):
        with pytest.raises(UnsupportedFunctionError):
            make_method("sin", "dlut")

    def test_saturating_functions_supported(self):
        for fn in ("tanh", "gelu", "sigmoid", "cndf", "exp", "log", "sqrt"):
            assert make_method(fn, "dlut") is not None


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("interp", [False, True])
    def test_bit_exact(self, interp, rng):
        m = _dlut(mant_bits=7, interpolated=interp, assume_in_range=False)
        xs = rng.uniform(-9, 9, 64).astype(_F32)
        ctx = CycleCounter()
        scalar = np.array([m.evaluate(ctx, float(x)) for x in xs], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(xs))
