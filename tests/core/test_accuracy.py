"""Tests for the accuracy metrics (Section 4.1.1)."""

import numpy as np
import pytest

from repro.core.accuracy import (
    AccuracyReport,
    max_abs_error,
    mean_ulp_error,
    measure,
    rmse,
)


class TestMetrics:
    def test_rmse_zero_for_identical(self):
        x = np.array([1.0, 2.0, 3.0])
        assert rmse(x, x) == 0.0

    def test_rmse_known_value(self):
        assert rmse(np.array([1.0, 1.0]), np.array([0.0, 0.0])) == 1.0

    def test_rmse_mixed(self):
        assert rmse(np.array([3.0, 0.0]), np.array([0.0, 4.0])) == \
            pytest.approx(np.sqrt(12.5))

    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 5.0]), np.array([1.1, 4.0])) == \
            pytest.approx(1.0)

    def test_ulp_error_one_ulp(self):
        exact = np.array([1.0])
        approx = np.array([1.0 + 2.0 ** -23])
        assert mean_ulp_error(approx, exact) == pytest.approx(1.0, rel=1e-6)

    def test_ulp_error_scales_with_magnitude(self):
        # Same absolute error is fewer ULPs at larger magnitude.
        e_small = mean_ulp_error(np.array([1.0 + 1e-6]), np.array([1.0]))
        e_large = mean_ulp_error(np.array([1024.0 + 1e-6]), np.array([1024.0]))
        assert e_small > 500 * e_large

    def test_ulp_error_at_zero_does_not_divide_by_zero(self):
        out = mean_ulp_error(np.array([1e-30]), np.array([0.0]))
        assert np.isfinite(out)


class TestMeasure:
    def test_measure_perfect_function(self, rng):
        xs = rng.uniform(0, 1, 100).astype(np.float64)
        rep = measure(np.sin, np.sin, xs)
        assert rep.rmse == 0.0
        assert rep.n_points == 100

    def test_measure_float32_truncation(self, rng):
        xs = rng.uniform(0, 2 * np.pi, 1000)
        rep = measure(
            lambda x: np.sin(x.astype(np.float32)).astype(np.float32),
            np.sin, xs,
        )
        assert 0 < rep.rmse < 1e-6
        assert rep.max_abs_error < 1e-6

    def test_report_str(self):
        rep = AccuracyReport(rmse=1e-7, max_abs_error=2e-7,
                             mean_ulp_error=0.5, n_points=10)
        text = str(rep)
        assert "RMSE" in text and "ULP" in text
