"""Parallel-safety pass: planted poison objects are found with exact paths;
the shipped plan artifacts are certified process-portable."""

import io
import pickle
import threading
import weakref

import numpy as np

from repro.api import make_method
from repro.lint import check_parallel_safety, run_parallel_safety
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.plan import compile_plan


class _Carrier:
    """Plain object whose attributes the walk must traverse."""

    def __init__(self, **attrs):
        for k, v in attrs.items():
            setattr(self, k, v)


def _rules(violations):
    return sorted(v.rule for v in violations)


class TestSeededPoison:
    def test_lock_deep_in_graph(self):
        obj = _Carrier(meta={"inner": [_Carrier(guard=threading.Lock())]})
        violations = check_parallel_safety(obj, "plan")
        assert "lock-held" in _rules(violations)
        lock = next(v for v in violations if v.rule == "lock-held")
        assert lock.where == "plan.meta['inner'][0].guard"
        assert lock.severity == "error"

    def test_condition_counts_as_lock(self):
        violations = check_parallel_safety(
            _Carrier(cond=threading.Condition()), "t")
        assert "lock-held" in _rules(violations)

    def test_open_file_handle(self):
        violations = check_parallel_safety(
            _Carrier(log=io.StringIO("x")), "t")
        assert "handle-held" in _rules(violations)
        assert any(v.where == "t.log" for v in violations)

    def test_lambda(self):
        violations = check_parallel_safety(_Carrier(fn=lambda x: x), "t")
        assert "unpicklable" in _rules(violations)
        assert any("lambda" in v.message for v in violations)

    def test_live_generator(self):
        violations = check_parallel_safety(
            _Carrier(stream=(i for i in range(3))), "t")
        assert "unpicklable" in _rules(violations)

    def test_module_reference(self):
        violations = check_parallel_safety(_Carrier(np=np), "t")
        assert "unpicklable" in _rules(violations)

    def test_weakref(self):
        target = _Carrier()
        violations = check_parallel_safety(
            _Carrier(ref=weakref.ref(target)), "t")
        assert "unpicklable" in _rules(violations)

    def test_pickle_failure_reported_even_when_walk_is_blind(self):
        # __reduce__ raising is invisible to the structural walk; the
        # round-trip ground truth must still catch it.
        class Stubborn:
            def __reduce__(self):
                raise TypeError("nope")

        violations = check_parallel_safety(_Carrier(s=Stubborn()), "t")
        assert "pickle-failed" in _rules(violations)
        failed = next(v for v in violations if v.rule == "pickle-failed")
        assert "nope" in failed.message

    def test_clean_object_graph(self):
        obj = _Carrier(
            xs=np.arange(8, dtype=np.float32),
            name="ok", nested=_Carrier(flags=(True, None, 2.5)),
            table={"a": [1, 2], "b": {3, 4}},
        )
        assert check_parallel_safety(obj, "t") == []

    def test_cycles_terminate(self):
        a = _Carrier()
        a.me = a
        assert check_parallel_safety(a, "t") == []


class TestShippedArtifacts:
    def test_default_targets_certified(self):
        violations, stats = run_parallel_safety()
        assert violations == []
        assert stats["parallel_targets"] >= 7

    def test_executed_plan_pickle_round_trip_is_bit_exact(self, rng):
        # The acceptance criterion: an ExecutionPlan crosses a process
        # boundary and still produces identical numbers — with its runtime
        # caches populated, not empty.
        system = PIMSystem(SystemConfig(n_dpus=16))
        plan = compile_plan(
            system, make_method("sin", "llut_i", density_log2=8,
                                assume_in_range=False))
        xs = rng.uniform(-4, 4, 400).astype(np.float32)
        before = plan.execute(xs)
        assert len(plan.tally_cache) > 0

        clone = pickle.loads(pickle.dumps(plan))
        after = clone.execute(xs)
        assert after.total_seconds == before.total_seconds
        assert after.kernel_seconds == before.kernel_seconds
        assert after.host_to_pim_seconds == before.host_to_pim_seconds
        assert after.pim_to_host_seconds == before.pim_to_host_seconds
        assert check_parallel_safety(clone, "clone") == []

    def test_injected_targets_override_defaults(self):
        violations, stats = run_parallel_safety(
            targets=[("bad", _Carrier(guard=threading.Lock()))])
        assert stats == {"parallel_targets": 1}
        assert _rules(violations) == ["lock-held", "pickle-failed"]
