"""Contract pass: traced tallies versus the declared op budgets."""

import pytest

from repro.api import make_method
from repro.core.functions.budgets import CATEGORIES, budget_for, tally_categories
from repro.core.functions.registry import get_function
from repro.core.lut.mlut import MLUT
from repro.isa.counter import CycleCounter
from repro.lint import check_contract


class CheatingMLUT(MLUT):
    """An M-LUT that quietly spends a second multiply per element."""

    def core_eval(self, ctx: CycleCounter, u):
        y = super().core_eval(ctx, u)
        return ctx.fmul(y, y)


class TestSeededBudgetViolation:
    def test_extra_multiply_is_caught(self):
        m = CheatingMLUT(get_function("sin")).setup()
        violations = check_contract(m)
        assert len(violations) == 1
        v = violations[0]
        assert v.rule == "budget-exceeded"
        assert v.severity == "error"
        assert v.where == "mlut:sin:fp_mul"
        assert "traced 2" in v.message

    def test_honest_method_passes(self):
        m = MLUT(get_function("sin")).setup()
        assert check_contract(m) == []


class TestBudgets:
    @pytest.mark.parametrize("function,method", [
        ("sin", "mlut"), ("sin", "llut"), ("sin", "llut_i"),
        ("sin", "cordic"), ("sin", "poly"), ("exp", "dlut"),
    ])
    def test_shipped_methods_meet_their_budgets(self, function, method):
        m = make_method(function, method).setup()
        assert check_contract(m) == []

    def test_budget_categories_are_closed(self):
        m = make_method("sin", "llut_i").setup()
        budget = budget_for(m)
        assert budget is not None
        assert set(budget) <= set(CATEGORIES)

    def test_tally_categories_buckets_ops(self):
        m = make_method("sin", "llut_i").setup()
        tally = m.element_tally(1.0)
        cats = tally_categories(tally.counts)
        assert cats["fp_mul"] == 1
        assert cats["loads"] == 2

    def test_unknown_method_warns_no_contract(self):
        class _Spec:
            name = "sin"

        class _Mystery:
            method_name = "mystery"
            spec = _Spec()

        violations = check_contract(_Mystery())
        assert len(violations) == 1
        assert violations[0].rule == "no-contract"
        assert violations[0].severity == "warning"
