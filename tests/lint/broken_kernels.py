"""Deliberately broken kernels for the lint test suite.

This module is never executed — the AST pass parses it (via the
``extra_modules`` hook / ``--extra-module`` flag) and must flag each seeded
defect below with exact file/line attribution.  The tests locate the
offending lines by searching this source, so edits here stay cheap, but
each defect must remain on a single distinctive line.
"""

import math


def bad_kernel_mul(ctx, u):
    """Uncounted multiply: ``*`` bypasses ``ctx.fmul``."""
    v = u * 2.0
    return ctx.fadd(v, v)


def bad_kernel_math(ctx, u):
    """Host transcendental on a traced value: zero slots charged."""
    return math.sin(u)


def bad_kernel_compare(ctx, u):
    """Raw comparison instead of ``ctx.fcmp`` + ``ctx.branch``."""
    if u > 0.5:
        return ctx.fneg(u)
    return u


def good_kernel_allowed(ctx, u):
    """The escape hatch: an allow directive suppresses the finding."""
    v = u * 2.0  # lint: allow(test fixture - deliberately suppressed)
    return ctx.fadd(v, v)


def good_kernel_const(ctx, u, shift):  # lint: const(shift)
    """Host-constant parameter: arithmetic on it costs nothing on-core."""
    k = shift + 1
    return ctx.shl(u, k)
