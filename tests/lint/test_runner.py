"""Runner and report: pass selection, exit codes, JSON shape, clean tree."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.lint import LintReport, Violation, run_lint


def _v(severity: str) -> Violation:
    return Violation(pass_name="ast", rule="uncounted-op", severity=severity,
                     message="m", file="f.py", line=3)


class TestReport:
    def test_severity_is_validated(self):
        with pytest.raises(ValueError):
            _v("fatal")

    def test_exit_codes(self):
        clean = LintReport(violations=[], checked={}, passes=("ast",))
        warn = LintReport(violations=[_v("warning")], checked={},
                          passes=("ast",))
        err = LintReport(violations=[_v("error")], checked={}, passes=("ast",))
        assert clean.exit_code(strict=True) == 0
        assert warn.exit_code(strict=False) == 0
        assert warn.exit_code(strict=True) == 1
        assert err.exit_code(strict=False) == 1

    def test_json_is_serializable(self):
        report = LintReport(violations=[_v("error")], checked={"kernels": 1},
                            passes=("ast",))
        blob = json.loads(json.dumps(report.to_json()))
        assert blob["counts"] == {"error": 1, "warning": 0, "suppressed": 0}
        assert blob["violations"][0]["rule"] == "uncounted-op"

    def test_text_report_mentions_location(self):
        report = LintReport(violations=[_v("error")], checked={},
                            passes=("ast",))
        text = report.to_text()
        assert "f.py:3" in text
        assert "1 error(s)" in text


class TestRunner:
    def test_unknown_pass_rejected(self):
        with pytest.raises(ConfigurationError):
            run_lint(passes=("ast", "bogus"))

    def test_bad_extra_module_rejected(self):
        with pytest.raises(ConfigurationError):
            run_lint(passes=("ast",), extra_modules=("no.such.module",))

    def test_single_pass_subset(self):
        report = run_lint(passes=("memory",))
        assert report.passes == ("memory",)
        assert "methods" in report.checked
        assert "kernels" not in report.checked

    def test_program_pass_subset_skips_kernel_work(self):
        report = run_lint(passes=("determinism", "obs-contract"))
        assert "determinism_modules" in report.checked
        assert "obs_modules" in report.checked
        assert "kernels" not in report.checked
        assert "methods" not in report.checked

    def test_pass_constant_partition(self):
        from repro.lint import ALL_PASSES, KERNEL_PASSES, PROGRAM_PASSES
        assert ALL_PASSES == KERNEL_PASSES + PROGRAM_PASSES
        assert PROGRAM_PASSES == ("cache-key", "determinism",
                                  "parallel-safety", "obs-contract")

    def test_shipped_tree_is_fully_clean(self):
        report = run_lint()
        assert report.violations == []
        assert report.checked["kernels"] >= 80
        assert report.checked["methods"] >= 200
        # The whole-program passes ran and covered the plan/obs layers.
        assert report.checked["key_fields"] == 10
        assert report.checked["determinism_modules"] >= 12
        assert report.checked["parallel_targets"] >= 7
        assert report.checked["obs_modules"] >= 90
        assert report.exit_code(strict=True) == 0
