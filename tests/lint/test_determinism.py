"""Determinism pass: every seeded nondeterminism source is caught."""

import textwrap

from repro.lint import check_determinism_source, run_determinism

# One planted defect per rule, plus benign look-alikes that must NOT fire.
DEFECTS = textwrap.dedent("""
    import random
    import time

    import numpy as np


    def unseeded():
        g = np.random.default_rng()          # unseeded-rng
        h = np.random.default_rng(42)        # ok: explicit seed
        return g, h


    def legacy_global_state():
        a = np.random.uniform(0, 1)          # unseeded-rng
        b = random.random()                  # unseeded-rng
        return a, b


    def wall_clock():
        t = time.time()                      # wall-clock
        m = time.monotonic()                 # ok: measurement clock
        p = time.perf_counter()              # ok: measurement clock
        return t, m, p


    def id_keyed(objs):
        return {id(o): o for o in objs}      # id-keyed


    def set_order(items):
        out = []
        for x in {1, 2, 3}:                  # set-iteration
            out.append(x)
        for x in sorted(set(items)):         # ok: sorted wrapper
            out.append(x)
        return out


    def shared_rng_in_loop(shards, rng):
        out = []
        for s in shards:
            out.append(s.run(rng=rng))       # unthreaded-rng
        out.append(shards[0].run(rng=rng))   # ok: outside the loop
        return out


    def suppressed():
        return time.time()  # lint: allow(snapshot metadata, test fixture)
""")


def _line_of(snippet: str) -> int:
    for i, line in enumerate(DEFECTS.splitlines(), start=1):
        if snippet in line:
            return i
    raise AssertionError(f"snippet {snippet!r} not found")


def _violations():
    return check_determinism_source(
        DEFECTS, module="tests.determinism_defects", file="<defects>")


class TestSeededDefects:
    def test_each_defect_flagged_with_exact_line(self):
        got = {(v.line, v.rule) for v in _violations()}
        assert got == {
            (_line_of("default_rng()          # unseeded"), "unseeded-rng"),
            (_line_of("np.random.uniform"), "unseeded-rng"),
            (_line_of("random.random()"), "unseeded-rng"),
            (_line_of("time.time()                      #"), "wall-clock"),
            (_line_of("id(o)"), "id-keyed"),
            (_line_of("for x in {1, 2, 3}"), "set-iteration"),
            (_line_of("s.run(rng=rng)"), "unthreaded-rng"),
        }

    def test_severity_and_attribution(self):
        for v in _violations():
            assert v.severity == "error"
            assert v.pass_name == "determinism"
            assert v.where.startswith("tests.determinism_defects.")

    def test_allow_directive_suppresses(self):
        allowed = _line_of("lint: allow(snapshot metadata")
        assert all(v.line != allowed for v in _violations())

    def test_unthreaded_rng_attributed_to_function(self):
        v = next(v for v in _violations() if v.rule == "unthreaded-rng")
        assert v.where.endswith(".shared_rng_in_loop")

    def test_rng_forwarding_outside_rng_function_not_flagged(self):
        # The function has no ``rng`` parameter: a local generator being
        # reused across iterations is that function's own business.
        src = textwrap.dedent("""
            import numpy as np
            def local(shards):
                rng = np.random.default_rng(7)
                return [s.run(rng=rng) for s in shards]
        """)
        assert check_determinism_source(src) == []


class TestCleanTree:
    def test_shipped_plan_batch_obs_modules_are_clean(self):
        violations, stats = run_determinism()
        assert violations == []
        assert stats["determinism_modules"] >= 12

    def test_injected_sources_override_discovery(self):
        violations, stats = run_determinism(
            sources=[("m", "<f>", "import time\nx = time.time()\n")])
        assert stats == {"determinism_modules": 1}
        assert [v.rule for v in violations] == ["wall-clock"]
