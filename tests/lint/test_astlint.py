"""AST pass: seeded defects are caught exactly; the shipped tree is clean."""

from pathlib import Path

from repro.lint import run_ast_lint

from tests.lint import broken_kernels

MODULE = "tests.lint.broken_kernels"
SOURCE = Path(broken_kernels.__file__).read_text()


def _line_of(snippet: str) -> int:
    for i, line in enumerate(SOURCE.splitlines(), start=1):
        if snippet in line:
            return i
    raise AssertionError(f"snippet {snippet!r} not found in broken_kernels")


def _broken_violations():
    violations, counts = run_ast_lint(packages=(), extra_modules=(MODULE,))
    assert counts["kernels"] == 5
    return violations


class TestSeededDefects:
    def test_each_defect_flagged_with_exact_line(self):
        violations = _broken_violations()
        got = {(v.line, v.rule) for v in violations}
        assert got == {
            (_line_of("v = u * 2.0"), "uncounted-op"),
            (_line_of("math.sin(u)"), "uncounted-call"),
            (_line_of("if u > 0.5:"), "uncounted-compare"),
        }

    def test_file_attribution_and_severity(self):
        for v in _broken_violations():
            assert v.file.endswith("broken_kernels.py")
            assert v.severity == "error"
            assert v.pass_name == "ast"
            assert "broken_kernels" in v.where

    def test_allow_directive_suppresses(self):
        allowed_line = _line_of("lint: allow(test fixture")
        assert all(v.line != allowed_line for v in _broken_violations())

    def test_const_directive_untaints_parameter(self):
        const_line = _line_of("k = shift + 1")
        assert all(v.line != const_line for v in _broken_violations())


class TestCleanTree:
    def test_shipped_kernels_have_no_violations(self):
        violations, counts = run_ast_lint()
        assert violations == []
        assert counts["kernels"] >= 80
