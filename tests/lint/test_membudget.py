"""Memory pass: LUT footprints versus the DPU's WRAM/MRAM capacities."""

from repro.api import make_method
from repro.lint import check_method_memory
from repro.pim.config import DPUConfig


class TestSeededOverflow:
    def test_wram_overflow_is_an_error(self):
        # ~1.6 MB of sine table declared for 64 KB of WRAM.
        m = make_method("sin", "llut", density_log2=16,
                        placement="wram").setup()
        violations = check_method_memory(m)
        assert len(violations) == 1
        v = violations[0]
        assert v.rule == "budget-exceeded"
        assert v.severity == "error"
        assert v.where == "llut:sin:wram"
        assert str(m.table_bytes()) in v.message

    def test_same_table_fits_mram(self):
        m = make_method("sin", "llut", density_log2=16).setup()
        assert check_method_memory(m) == []

    def test_wram_pressure_warns(self):
        # 51 KB in 64 KB of WRAM: deployable, but over the 75% watermark.
        m = make_method("sin", "llut", density_log2=11,
                        placement="wram").setup()
        violations = check_method_memory(m)
        assert [v.rule for v in violations] == ["wram-pressure"]
        assert violations[0].severity == "warning"

    def test_budget_scales_with_the_dpu_config(self):
        m = make_method("sin", "llut", density_log2=11,
                        placement="wram").setup()
        roomy = DPUConfig(wram_bytes=1 << 20)
        assert check_method_memory(m, dpu=roomy) == []
