"""Cache-key pass: seeded key defects are caught; the shipped pair is sound."""

import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.lint import (check_cache_key_sources, check_request_key_sources,
                        run_cache_key)

# A minimal sound plan/cache pair the seeded defects perturb one at a time.
SOUND_PLAN = textwrap.dedent("""
    class ExecutionPlan:
        def __init__(self, method, tasklets):
            self.method = method
            self.tasklets = tasklets
            self.memo = {}

        def _helper(self):
            return self.tasklets + 1

        def execute(self, xs):
            if xs in self.memo:
                return self.memo[xs]
            return self.method, self._helper()
""")

SOUND_CACHE = textwrap.dedent("""
    class PlanKey:
        table_key: str
        placement: str
        tasklets: int

    def _method_parts(method):
        return ("air", bool(method))

    def key_for(method, tasklets):
        return PlanKey()
""")

COVERAGE = {"method": ("table_key", "placement"), "tasklets": ("tasklets",)}
STATE = {"memo"}


def _check(plan=SOUND_PLAN, cache=SOUND_CACHE, coverage=COVERAGE,
           state=STATE):
    return check_cache_key_sources(
        plan, cache, coverage=coverage, state_attrs=state)


class TestSoundPair:
    def test_clean(self):
        violations, stats = _check()
        assert violations == []
        assert stats == {"plan_attrs": 3, "key_fields": 3,
                         "execute_reads": 3}


class TestSeededDefects:
    def test_missing_field_attr_read_in_execute(self):
        # Seeded defect: ``imbalance`` influences execute but is neither a
        # key field nor declared state -> unsound cache hit.
        plan = SOUND_PLAN.replace(
            "self.memo = {}",
            "self.memo = {}\n        self.imbalance = 0.1",
        ).replace(
            "return self.method, self._helper()",
            "return self.method, self._helper(), self.imbalance",
        )
        violations, _ = _check(plan=plan)
        assert [v.rule for v in violations] == ["key-missing-field"]
        v = violations[0]
        assert v.severity == "error"
        assert v.where == "ExecutionPlan.imbalance"
        assert v.line is not None

    def test_missing_field_found_through_helper_indirection(self):
        # The read hides behind a self-method call; the transitive closure
        # must still reach it.
        plan = SOUND_PLAN.replace(
            "self.memo = {}",
            "self.memo = {}\n        self.costs = None",
        ).replace(
            "return self.tasklets + 1",
            "return self.tasklets + self.costs",
        )
        violations, _ = _check(plan=plan)
        assert [v.rule for v in violations] == ["key-missing-field"]
        assert violations[0].where == "ExecutionPlan.costs"

    def test_unused_key_field(self):
        # Seeded defect: an extra PlanKey field nothing reads -> needless
        # cache split.
        cache = SOUND_CACHE.replace(
            "tasklets: int", "tasklets: int\n    ghost: int")
        violations, _ = _check(cache=cache)
        assert [v.rule for v in violations] == ["key-unused-field"]
        v = violations[0]
        assert v.severity == "warning"
        assert v.where == "PlanKey.ghost"

    def test_unknown_coverage_field(self):
        # Seeded defect: the contract names a key field PlanKey lost in a
        # refactor.
        coverage = dict(COVERAGE, method=("table_key", "plcmnt"))
        violations, _ = _check(coverage=coverage)
        rules = sorted(v.rule for v in violations)
        # The typo'd field is unknown AND the real field is now uncovered.
        assert rules == ["key-unknown-coverage", "key-unused-field"]
        unknown = next(v for v in violations
                       if v.rule == "key-unknown-coverage")
        assert unknown.severity == "error"
        assert unknown.where == "PlanKey.plcmnt"

    def test_repr_conversion_in_builder(self):
        # Seeded defect: the exact pre-fix bug — ``!r`` repr strings folded
        # into the digest.
        cache = SOUND_CACHE.replace(
            'return ("air", bool(method))',
            'return f"{method!r}"')
        violations, _ = _check(cache=cache)
        assert [v.rule for v in violations] == ["key-unstable-component"]
        assert violations[0].where == "_method_parts"

    def test_repr_call_in_builder(self):
        cache = SOUND_CACHE.replace(
            'return ("air", bool(method))',
            'return ("air", repr(method))')
        violations, _ = _check(cache=cache)
        assert [v.rule for v in violations] == ["key-unstable-component"]

    def test_repr_outside_builders_not_flagged(self):
        cache = SOUND_CACHE + "\ndef debug_dump(m):\n    return repr(m)\n"
        violations, _ = _check(cache=cache)
        assert violations == []

    def test_state_attr_exemption(self):
        # ``memo`` is read in execute but declared state; removing the
        # declaration must surface it.
        violations, _ = _check(state=set())
        assert [v.rule for v in violations] == ["key-missing-field"]
        assert violations[0].where == "ExecutionPlan.memo"


class TestConfigErrors:
    def test_missing_plan_class(self):
        with pytest.raises(ConfigurationError):
            check_cache_key_sources("x = 1", SOUND_CACHE)

    def test_missing_key_class(self):
        with pytest.raises(ConfigurationError):
            check_cache_key_sources(SOUND_PLAN, "x = 1")


# A minimal sound serve-key module: every RequestSpec field flows into the
# PlanKey of SOUND_CACHE through the coverage contract.
SOUND_SERVE = textwrap.dedent("""
    class RequestSpec:
        function: str
        placement: str

    def normalize_request(function, placement):
        return RequestSpec()

    def request_key(spec):
        return ("k", str(spec.function), str(spec.placement))
""")

REQ_COVERAGE = {"function": ("table_key",), "placement": ("placement",)}
REQ_BUILDERS = ("normalize_request", "request_key")


def _check_request(serve=SOUND_SERVE, cache=SOUND_CACHE,
                   coverage=REQ_COVERAGE):
    return check_request_key_sources(
        serve, cache, coverage=coverage, key_builders=REQ_BUILDERS)


class TestRequestKeySoundPair:
    def test_clean(self):
        violations, stats = _check_request()
        assert violations == []
        assert stats == {"request_fields": 2}


class TestRequestKeySeededDefects:
    def test_unmapped_spec_field(self):
        # Seeded defect: a new RequestSpec knob nobody mapped into the
        # plan key -> requests differing in it would share one batch.
        serve = SOUND_SERVE.replace(
            "placement: str", "placement: str\n    assume_in_range: bool")
        violations, _ = _check_request(serve=serve)
        assert [v.rule for v in violations] == ["request-key-unmapped-field"]
        v = violations[0]
        assert v.severity == "error"
        assert v.where == "RequestSpec.assume_in_range"

    def test_unknown_spec_field_in_coverage(self):
        # Seeded defect: the contract names a spec field lost in a
        # refactor -> a stale contract proves nothing.
        coverage = dict(REQ_COVERAGE, qformat=("table_key",))
        violations, _ = _check_request(coverage=coverage)
        assert [v.rule for v in violations] == ["request-key-unknown-field"]
        assert violations[0].where == "RequestSpec.qformat"

    def test_unknown_key_field_in_coverage(self):
        # Seeded defect: coverage maps into a PlanKey field that does not
        # exist.
        coverage = dict(REQ_COVERAGE, function=("tbl_key",))
        violations, _ = _check_request(coverage=coverage)
        assert [v.rule for v in violations] == ["request-key-unknown-coverage"]
        assert violations[0].where == "PlanKey.tbl_key"

    def test_repr_in_serve_builder(self):
        # Seeded defect: repr-formatted component in a serve key builder.
        serve = SOUND_SERVE.replace(
            'return ("k", str(spec.function), str(spec.placement))',
            'return ("k", f"{spec.function!r}", str(spec.placement))')
        violations, _ = _check_request(serve=serve)
        assert [v.rule for v in violations] == ["key-unstable-component"]
        assert violations[0].where == "request_key"

    def test_missing_spec_class(self):
        with pytest.raises(ConfigurationError):
            check_request_key_sources("x = 1", SOUND_CACHE)


class TestShippedTree:
    def test_shipped_plan_cache_pair_is_sound(self):
        violations, stats = run_cache_key()
        assert violations == []
        assert stats["key_fields"] == 10
        assert stats["plan_attrs"] >= 12
        assert stats["execute_reads"] >= 10
        # The serving RequestSpec rides the same whole-program run.
        assert stats["request_fields"] == 5
