"""Obs-contract pass: span/metric discipline defects are caught exactly."""

import textwrap

from repro.lint import check_obs_contract_source, run_obs_contract
from repro.obs.catalog import (
    COUNTER_PATTERNS,
    COUNTERS,
    GAUGES,
    metric_kind,
    pattern_kind,
)

# One planted defect per rule, plus compliant sites that must pass.
DEFECTS = textwrap.dedent("""
    def bad_span(tracer):
        sp = tracer.span("leaky")            # span-unclosed
        sp.set(x=1)


    def good_span(tracer):
        with tracer.span("tight") as sp:     # ok: with-item
            sp.set(x=1)


    def bad_metrics(metrics, key):
        metrics.inc("no.such.counter")               # undeclared-metric
        metrics.observe("plan.compiles", 1.0)        # metric-kind-mismatch
        metrics.inc(f"rogue.{key}.count")            # dynamic-metric-name
        metrics.inc("batch." + key)                  # dynamic-metric-name
        metrics.inc(f"batch.path[{key}].count")      # ok: declared family
        metrics.inc("plan.executions")               # ok: declared counter
        metrics.observe("tablecache.bytes", 2.0)     # ok: declared gauge


    def suppressed(metrics):
        metrics.inc("adhoc.dev.counter")  # lint: allow(scratch, test only)
""")


def _line_of(snippet: str) -> int:
    for i, line in enumerate(DEFECTS.splitlines(), start=1):
        if snippet in line:
            return i
    raise AssertionError(f"snippet {snippet!r} not found")


def _violations():
    violations, used, stats = check_obs_contract_source(
        DEFECTS, module="tests.obs_defects", file="<defects>")
    return violations, used, stats


class TestSeededDefects:
    def test_each_defect_flagged_with_exact_line(self):
        violations, _, _ = _violations()
        got = {(v.line, v.rule) for v in violations}
        assert got == {
            (_line_of('tracer.span("leaky")'), "span-unclosed"),
            (_line_of('"no.such.counter"'), "undeclared-metric"),
            (_line_of('observe("plan.compiles"'), "metric-kind-mismatch"),
            (_line_of('f"rogue.{key}.count"'), "dynamic-metric-name"),
            (_line_of('"batch." + key'), "dynamic-metric-name"),
        }

    def test_severity_and_attribution(self):
        violations, _, _ = _violations()
        for v in violations:
            assert v.severity == "error"
            assert v.pass_name == "obs-contract"
            assert v.where == "tests.obs_defects"

    def test_used_names_include_literals_and_patterns(self):
        _, used, _ = _violations()
        assert "plan.executions" in used
        assert "tablecache.bytes" in used
        assert "batch.path[*].count" in used

    def test_site_stats(self):
        _, _, stats = _violations()
        assert stats["span_sites"] == 2
        assert stats["metric_sites"] == 8

    def test_allow_directive_suppresses(self):
        violations, _, _ = _violations()
        allowed = _line_of("lint: allow(scratch")
        assert all(v.line != allowed for v in violations)


class TestUnusedMetrics:
    def test_dead_declaration_warned(self):
        violations, stats = run_obs_contract(
            sources=[("m", "<f>", 'metrics.inc("plan.compiles")\n')])
        unused = [v for v in violations if v.rule == "unused-metric"]
        declared = set(COUNTERS) | set(GAUGES) | set(COUNTER_PATTERNS)
        assert len(unused) == len(declared) - 1
        assert all(v.severity == "warning" for v in unused)
        assert stats["obs_modules"] == 1

    def test_unused_check_can_be_disabled(self):
        violations, _ = run_obs_contract(
            sources=[("m", "<f>", "x = 1\n")], check_unused=False)
        assert violations == []


class TestCatalog:
    def test_kind_lookup(self):
        assert metric_kind("plan.compiles") == "counter"
        assert metric_kind("tablecache.bytes") == "gauge"
        assert metric_kind("nope") is None

    def test_pattern_lookup(self):
        assert pattern_kind("batch.path[*].count") == "counter"
        assert pattern_kind("memory.*_bytes") == "counter"
        assert pattern_kind("nope.*") is None

    def test_namespaces_disjoint(self):
        assert not set(COUNTERS) & set(GAUGES)


class TestCleanTree:
    def test_shipped_tree_honors_the_contract(self):
        violations, stats = run_obs_contract()
        assert violations == []
        assert stats["obs_modules"] >= 90
        assert stats["span_sites"] >= 20
        assert stats["metric_sites"] >= 35
