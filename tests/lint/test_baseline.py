"""Baseline mechanism: accepted findings are subtracted, new ones are not."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    LintReport,
    Violation,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)


def _v(rule="wall-clock", message="reads the wall clock", line=10,
       file="/abs/path/to/bench.py", where=None):
    return Violation(pass_name="determinism", rule=rule, severity="error",
                     message=message, file=file, line=line, where=where)


class TestFingerprint:
    def test_line_insensitive(self):
        assert fingerprint(_v(line=10)) == fingerprint(_v(line=99))

    def test_path_reduced_to_basename(self):
        assert fingerprint(_v(file="/a/bench.py")) \
            == fingerprint(_v(file="/b/c/bench.py"))
        assert fingerprint(_v()).startswith(
            "determinism/wall-clock/bench.py/")

    def test_rule_and_message_distinguish(self):
        assert fingerprint(_v(rule="id-keyed")) != fingerprint(_v())
        assert fingerprint(_v(message="other")) != fingerprint(_v())

    def test_where_fallback_when_fileless(self):
        fp = fingerprint(_v(file=None, where="plan:sin:llut_i.system"))
        assert "/plan:sin:llut_i.system/" in fp


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        report = LintReport(violations=[_v(), _v(rule="id-keyed")])
        path = str(tmp_path / "bl.json")
        n = write_baseline(report, path)
        assert n == 2
        blob = json.loads((tmp_path / "bl.json").read_text())
        assert blob["schema"] == "repro-lint-baseline/1"
        assert load_baseline(path) == {fingerprint(v)
                                       for v in report.violations}

    def test_write_dedupes_identical_fingerprints(self, tmp_path):
        report = LintReport(violations=[_v(line=1), _v(line=2)])
        path = str(tmp_path / "bl.json")
        assert write_baseline(report, path) == 1


class TestApply:
    def test_accepted_findings_removed_new_kept(self):
        old, new = _v(), _v(rule="id-keyed", message="id() varies")
        report = LintReport(violations=[old, new])
        n = apply_baseline(report, {fingerprint(old)})
        assert n == 1
        assert report.violations == [new]
        assert report.suppressed == 1
        assert report.exit_code() == 1  # the new finding still fails

    def test_fully_baselined_report_passes(self):
        v = _v()
        report = LintReport(violations=[v])
        apply_baseline(report, {fingerprint(v)})
        assert report.violations == []
        assert report.exit_code(strict=True) == 0
        assert '"suppressed": 1' in json.dumps(report.to_json())
        assert "1 baselined" in report.to_text()


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_baseline(str(tmp_path / "absent.json"))

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{nope")
        with pytest.raises(ConfigurationError):
            load_baseline(str(p))

    def test_wrong_schema(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": "other/9", "accepted": []}))
        with pytest.raises(ConfigurationError):
            load_baseline(str(p))

    def test_non_string_accepted_entries(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps(
            {"schema": "repro-lint-baseline/1", "accepted": [1, 2]}))
        with pytest.raises(ConfigurationError):
            load_baseline(str(p))
