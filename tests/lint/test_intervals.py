"""Interval pass: s3.28 range propagation over declared domains."""

import pytest

from repro.core.functions.registry import get_function
from repro.core.lut.llut import LLUTFixed, LLUTInterpolatedFixed
from repro.fixedpoint import Q3_28
from repro.lint import Interval, check_method_intervals, fx_mul_interval


class TestSeededOverflow:
    def test_sinh_overflows_the_fixed_format(self):
        # sinh reaches ~27.3 on its declared (0, 4) domain — far outside
        # the s3.28 value range, so every table word near the top wraps.
        m = LLUTInterpolatedFixed(get_function("sinh")).setup()
        violations = check_method_intervals(m)
        assert any(v.rule == "value-overflow" and v.severity == "error"
                   for v in violations)
        v = next(v for v in violations if v.rule == "value-overflow")
        assert v.where == "llut_i_fx:sinh:table"
        assert "wrap" in v.message

    def test_sine_fixed_luts_are_clean(self):
        for cls in (LLUTFixed, LLUTInterpolatedFixed):
            m = cls(get_function("sin")).setup()
            assert check_method_intervals(m) == []


class TestIntervalArithmetic:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_add_sub_neg(self):
        a, b = Interval(-2, 5), Interval(1, 3)
        assert a.add(b) == Interval(-1, 8)
        assert a.sub(b) == Interval(-5, 4)
        assert a.neg() == Interval(-5, 2)

    def test_mul_takes_corner_extremes(self):
        assert Interval(-2, 3).mul(Interval(-4, 5)) == Interval(-12, 15)

    def test_fits_word(self):
        assert Interval(-(1 << 31), (1 << 31) - 1).fits_word(32)
        assert not Interval(0, 1 << 31).fits_word(32)

    def test_fx_mul_overflow_flag(self):
        big = Interval.from_floats(Q3_28, 5.0, 7.5)
        _, overflow = fx_mul_interval(Q3_28, big, big)
        assert overflow  # 7.5 * 7.5 = 56.25 leaves the s3.28 range

    def test_fx_mul_in_range(self):
        small = Interval.from_floats(Q3_28, 0.0, 1.0)
        res, overflow = fx_mul_interval(Q3_28, small, small)
        assert not overflow
        assert res.lo == 0 and res.hi <= Q3_28.max_raw
