"""Tests for the exception hierarchy and the package surface."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    MemoryLayoutError,
    RangeError,
    SimulationError,
    TransPimError,
    UnsupportedFunctionError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, UnsupportedFunctionError, RangeError,
        MemoryLayoutError, SimulationError,
    ])
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, TransPimError)

    def test_unsupported_function_message(self):
        e = UnsupportedFunctionError("sin", "dlut", "periodic")
        assert "sin" in str(e) and "dlut" in str(e) and "periodic" in str(e)

    def test_catchable_as_base(self):
        with pytest.raises(TransPimError):
            repro.make_method("sin", "dlut")


class TestPackageSurface:
    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_from_docstring(self):
        import numpy as np
        sin = repro.make_method("sin", "llut_i", density_log2=12).setup()
        x = np.linspace(0, 2 * np.pi, 100, dtype=np.float32)
        y = sin.evaluate_vec(x)
        assert np.allclose(y, np.sin(x), atol=1e-5)
        assert sin.mean_slots(x[:8]) > 0
