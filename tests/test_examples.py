"""Smoke tests: the example scripts run end to end.

Each example's ``main()`` is imported and executed (with output captured);
these catch API drift between the library and its documented entry points.
"""

import importlib
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR.parent))


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"examples.{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "accuracy" in out and "CORDIC" in out

    def test_runtime_pipeline(self, capsys):
        _load("runtime_pipeline").main()
        out = capsys.readouterr().out
        assert "installed 5 functions" in out
        assert "WRAM" in out

    def test_method_explorer(self, capsys):
        _load("method_explorer").main("sqrt")
        out = capsys.readouterr().out
        assert "method tradeoffs" in out
        assert "fastest:" in out

    @pytest.mark.slow
    def test_option_pricing(self, capsys):
        mod = _load("option_pricing")
        mod.main()
        out = capsys.readouterr().out
        assert "Black-Scholes" in out and "pim fixed_full" in out

    @pytest.mark.slow
    def test_activation_functions(self, capsys):
        _load("activation_functions").main()
        out = capsys.readouterr().out
        assert "argmax agreement" in out


class TestExamplesAreListed:
    def test_all_examples_have_main(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            module = _load(path.stem)
            assert hasattr(module, "main"), path.name

    def test_readme_mentions_examples(self):
        readme = (EXAMPLES_DIR.parent / "README.md").read_text()
        for name in ("quickstart", "option_pricing", "activation_functions",
                     "method_explorer"):
            assert name in readme, name
