"""Failure-injection tests: hostile inputs must never crash a method.

Real PIM kernels receive whatever bits sit in the bank: NaNs, infinities,
subnormals, negative zeros.  The library's contract is the DPU's —
garbage-in may produce garbage-out, but evaluation always completes and
ordinary inputs in the same batch are unaffected.
"""

import numpy as np
import pytest

from repro.api import make_method
from repro.core.functions.support import METHOD_SUPPORT
from repro.isa.counter import CycleCounter

_F32 = np.float32

HOSTILE = [
    float("nan"), float("inf"), float("-inf"),
    0.0, -0.0, 1e-42, -1e-42, 3.4e38, -3.4e38,
]

_PARAMS = {
    "cordic": {"iterations": 12},
    "cordic_fx": {"iterations": 12},
    "poly": {"degree": 6},
    "slut_i": {"target_rmse": 1e-4, "seg_bits": 3},
    "cordic_lut": {"iterations": 12, "lut_bits": 4},
    "mlut": {"size": 256},
    "mlut_i": {"size": 257},
    "llut": {"density_log2": 8},
    "llut_i": {"density_log2": 8},
    "llut_fx": {"density_log2": 8},
    "llut_i_fx": {"density_log2": 8},
    "dlut": {"mant_bits": 6},
    "dlut_i": {"mant_bits": 6},
    "dllut": {"mant_bits": 6},
    "dllut_i": {"mant_bits": 6},
}

#: A representative function per method (all methods support these).
_FUNCTION_FOR = {
    "cordic": "sin", "cordic_fx": "sin", "cordic_lut": "sin", "poly": "sin", "slut_i": "sin",
    "mlut": "sin", "mlut_i": "sin", "llut": "sin", "llut_i": "sin",
    "llut_fx": "sin", "llut_i_fx": "sin",
    "dlut": "tanh", "dlut_i": "tanh", "dllut": "tanh", "dllut_i": "tanh",
}


@pytest.mark.parametrize("method", sorted(METHOD_SUPPORT))
def test_hostile_scalars_never_raise(method):
    function = _FUNCTION_FOR[method]
    m = make_method(function, method, assume_in_range=False,
                    **_PARAMS[method]).setup()
    ctx = CycleCounter()
    for x in HOSTILE:
        out = m.evaluate(ctx, x)  # must complete
        assert out is not None


@pytest.mark.parametrize("method", ["llut_i", "mlut_i", "cordic", "dlut_i"])
def test_hostile_elements_do_not_poison_neighbors(method):
    """A NaN in the batch must not corrupt the other elements' results."""
    function = _FUNCTION_FOR[method]
    m = make_method(function, method, assume_in_range=False,
                    **_PARAMS[method]).setup()
    clean = np.array([0.5, 1.5, 2.5], dtype=_F32)
    dirty = np.array([0.5, np.nan, 1.5, np.inf, 2.5], dtype=_F32)
    out_clean = m.evaluate_vec(clean)
    out_dirty = m.evaluate_vec(dirty)
    np.testing.assert_array_equal(out_clean, out_dirty[[0, 2, 4]])


def test_workload_kernels_survive_nan_options():
    from repro.workloads.blackscholes import Blackscholes, generate_options
    batch = generate_options(8)
    batch.spot[3] = np.nan
    bs = Blackscholes("llut_i").setup()
    prices = bs.prices(batch)
    assert prices.shape == (8,)
    assert np.isfinite(prices[[0, 1, 2, 4, 5, 6, 7]]).all()


def test_conversions_defined_for_nonfinite(ctx):
    assert ctx.f2i(float("nan")) == 0
    assert ctx.ffloor(float("inf")) == 0
    assert ctx.fround(float("-inf")) == 0
    assert ctx.f2fx(float("nan"), 28) == 0
