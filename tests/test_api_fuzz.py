"""API-surface fuzzing: random valid configurations must behave.

Hypothesis draws (function, method, precision knob) combinations from the
support matrix's valid space; every draw must construct, set up, evaluate
finitely over its bench domain, agree between scalar and vectorized paths,
and report consistent memory/setup metadata.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make_method
from repro.core.functions.registry import get_function
from repro.core.functions.support import METHOD_SUPPORT
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _configs():
    """Strategy producing (function, method, params) triples."""
    knob = {
        "cordic": ("iterations", st.integers(4, 32)),
        "cordic_fx": ("iterations", st.integers(4, 32)),
        "poly": ("degree", st.integers(2, 16)),
        "mlut": ("size", st.integers(16, 1 << 14)),
        "mlut_i": ("size", st.integers(16, 1 << 14)),
        "llut": ("density_log2", st.integers(2, 16)),
        "llut_i": ("density_log2", st.integers(2, 16)),
        "llut_fx": ("density_log2", st.integers(2, 16)),
        "llut_i_fx": ("density_log2", st.integers(2, 16)),
        "dlut": ("mant_bits", st.integers(2, 12)),
        "dlut_i": ("mant_bits", st.integers(2, 12)),
        "dllut": ("mant_bits", st.integers(2, 12)),
        "dllut_i": ("mant_bits", st.integers(2, 12)),
        "slut_i": ("seg_bits", st.integers(2, 6)),
    }
    pairs = [(m, f) for m, funcs in METHOD_SUPPORT.items()
             for f in sorted(funcs) if m != "cordic_lut"]

    @st.composite
    def config(draw):
        method, function = draw(st.sampled_from(pairs))
        name, strategy = knob[method]
        return function, method, {name: draw(strategy)}

    return config()


@settings(max_examples=60, deadline=None)
@given(cfg=_configs())
def test_random_valid_configuration_behaves(cfg):
    function, method, params = cfg
    spec = get_function(function)
    m = make_method(function, method, assume_in_range=False, **params)
    m.setup()

    rng = np.random.default_rng(123)
    lo, hi = spec.bench_domain
    xs = rng.uniform(lo, hi, 64).astype(_F32)

    out = m.evaluate_vec(xs)
    assert out.shape == xs.shape
    assert np.all(np.isfinite(out)), (function, method, params)

    ctx = CycleCounter()
    scalar = np.array([m.evaluate(ctx, float(x)) for x in xs[:8]],
                      dtype=_F32)
    np.testing.assert_array_equal(scalar, out[:8])

    assert m.table_bytes() >= 0
    assert m.host_entries() >= 0
    assert m.element_tally(float(xs[0])).slots > 0


@settings(max_examples=30, deadline=None)
@given(cfg=_configs())
def test_random_configuration_cost_deterministic(cfg):
    """The same configuration always charges the same per-element slots for
    the same input (no hidden state across evaluations)."""
    function, method, params = cfg
    m = make_method(function, method, assume_in_range=False, **params).setup()
    spec = get_function(function)
    x = float(np.float32(sum(spec.bench_domain) / 2 + 0.1))
    a = m.element_tally(x).slots
    b = m.element_tally(x).slots
    assert a == b
