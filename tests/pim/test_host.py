"""Tests for the host runtime (install-and-call API)."""

import numpy as np
import pytest

from repro import make_method
from repro.errors import ConfigurationError, MemoryLayoutError
from repro.pim.host import PIMRuntime


@pytest.fixture
def runtime():
    return PIMRuntime()


class TestInstall:
    def test_install_and_call(self, runtime, sine_inputs):
        sin = runtime.install(make_method("sin", "llut_i", density_log2=10))
        out = sin(sine_inputs)
        np.testing.assert_allclose(out, np.sin(sine_inputs), atol=1e-5)

    def test_setup_time_accounted(self, runtime):
        sin = runtime.install(make_method("sin", "llut_i", density_log2=12))
        assert sin.setup_seconds > 0
        assert runtime.total_setup_seconds == sin.setup_seconds

    def test_tables_occupy_core_memory(self, runtime):
        m = make_method("sin", "llut", density_log2=12)
        runtime.install(m)
        assert runtime.system.dpu.mram.used_bytes >= m.table_bytes()

    def test_wram_placement(self, runtime):
        m = make_method("sin", "llut", density_log2=10, placement="wram")
        runtime.install(m)
        assert runtime.system.dpu.wram.used_bytes > 0

    def test_wram_overflow_raises(self, runtime):
        big = make_method("sin", "llut", density_log2=16, placement="wram")
        with pytest.raises(MemoryLayoutError):
            runtime.install(big)

    def test_shared_memory_across_functions(self, runtime):
        runtime.install(make_method("sin", "llut", density_log2=12))
        used_after_one = runtime.system.dpu.mram.used_bytes
        runtime.install(make_method("exp", "llut", density_log2=12))
        assert runtime.system.dpu.mram.used_bytes > used_after_one

    def test_duplicate_install_rejected(self, runtime):
        runtime.install(make_method("sin", "llut_i", density_log2=10))
        with pytest.raises(ConfigurationError, match="already installed"):
            runtime.install(make_method("sin", "llut_i", density_log2=12))

    def test_rejected_duplicate_leaves_no_trace(self, runtime):
        """The name check must run before any core memory is touched.

        A rejected install used to allocate the duplicate's tables in every
        core (and bump the memory gauges) before raising.
        """
        from repro.obs.metrics import collecting

        runtime.install(make_method("sin", "llut_i", density_log2=10))
        used_before = runtime.system.dpu.mram.used_bytes
        setup_before = runtime.total_setup_seconds
        dup = make_method("sin", "llut_i", density_log2=12)
        with collecting() as reg:
            with pytest.raises(ConfigurationError, match="already installed"):
                runtime.install(dup)
        assert runtime.system.dpu.mram.used_bytes == used_before
        assert runtime.total_setup_seconds == setup_before
        assert reg.value("memory.mram_bytes") == 0
        assert not dup._ready  # tables were never built


class TestLookupAndRun:
    def test_getitem(self, runtime):
        runtime.install(make_method("sin", "llut_i", density_log2=10))
        assert runtime["llut_i:sin"].name == "llut_i:sin"

    def test_missing_function(self, runtime):
        with pytest.raises(ConfigurationError, match="not installed"):
            runtime["llut_i:tanh"]

    def test_functions_listing(self, runtime):
        runtime.install(make_method("sin", "llut_i", density_log2=10))
        runtime.install(make_method("cos", "llut_i", density_log2=10))
        assert runtime.functions == ["llut_i:cos", "llut_i:sin"]

    def test_run_returns_system_timing(self, runtime, sine_inputs):
        sin = runtime.install(make_method("sin", "llut_i", density_log2=10))
        res = sin.run(sine_inputs, virtual_n=1_000_000)
        assert res.total_seconds > 0
        assert res.n_elements == 1_000_000

    def test_memory_report(self, runtime):
        runtime.install(make_method("sin", "llut_i", density_log2=10))
        report = runtime.memory_report()
        assert "MRAM" in report and "llut_i:sin" in report
