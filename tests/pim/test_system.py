"""Tests for the multi-core PIM system model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.pim.config import DPUConfig, SystemConfig
from repro.pim.system import PIMSystem


def identity_kernel(ctx, x):
    return ctx.fadd(x, 0.0)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = SystemConfig()
        assert cfg.n_dpus == 2545
        assert cfg.dpu.frequency_mhz == 350.0

    def test_invalid_dpus(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n_dpus=0)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            DPUConfig(frequency_mhz=0)

    def test_transfer_seconds(self):
        cfg = SystemConfig(host_to_pim_bw=1e9, pim_to_host_bw=2e9)
        assert cfg.host_to_pim_seconds(1_000_000) == pytest.approx(1e-3)
        assert cfg.pim_to_host_seconds(1_000_000) == pytest.approx(0.5e-3)


class TestElementsPerDpu:
    def test_even_split(self):
        sys_ = PIMSystem(SystemConfig(n_dpus=10))
        assert sys_.elements_per_dpu(100) == 10

    def test_rounds_up(self):
        sys_ = PIMSystem(SystemConfig(n_dpus=10))
        assert sys_.elements_per_dpu(101) == 11

    def test_fewer_elements_than_dpus(self):
        sys_ = PIMSystem(SystemConfig(n_dpus=10))
        assert sys_.elements_per_dpu(3) == 1


class TestRun:
    def test_timing_components(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 10000).astype(np.float32)
        res = sys_.run(identity_kernel, xs)
        assert res.host_to_pim_seconds > 0
        assert res.pim_to_host_seconds > 0
        assert res.kernel_seconds > 0
        assert res.total_seconds == pytest.approx(
            res.kernel_seconds + res.host_to_pim_seconds
            + res.pim_to_host_seconds + res.launch_seconds
        )

    def test_no_transfers_mode(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 10000).astype(np.float32)
        res = sys_.run(identity_kernel, xs, include_transfers=False)
        assert res.host_to_pim_seconds == 0
        assert res.pim_to_host_seconds == 0
        assert res.compute_only_seconds < sys_.run(identity_kernel, xs).total_seconds

    def test_more_dpus_faster_kernel(self, rng):
        xs = rng.uniform(0, 1, 100000).astype(np.float32)
        small = PIMSystem(SystemConfig(n_dpus=100))
        big = PIMSystem(SystemConfig(n_dpus=2000))
        t_small = small.run(identity_kernel, xs).kernel_seconds
        t_big = big.run(identity_kernel, xs).kernel_seconds
        assert t_big < t_small

    def test_empty_raises(self):
        sys_ = PIMSystem()
        with pytest.raises(SimulationError):
            sys_.run(identity_kernel, np.array([], dtype=np.float32))

    def test_kernel_time_scales_with_share(self, rng):
        # With n_dpus=1 the kernel time equals the single-core time.
        xs = rng.uniform(0, 1, 5000).astype(np.float32)
        sys_ = PIMSystem(SystemConfig(n_dpus=1))
        res = sys_.run(identity_kernel, xs)
        assert res.kernel_seconds == pytest.approx(res.per_dpu.seconds)


class TestImbalance:
    def test_straggler_slows_the_launch(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 5000).astype(np.float32)
        even = sys_.run(identity_kernel, xs, virtual_n=10_000_000)
        skewed = sys_.run(identity_kernel, xs, virtual_n=10_000_000,
                          imbalance=0.5)
        assert skewed.kernel_seconds == pytest.approx(
            1.5 * even.kernel_seconds, rel=1e-9)

    def test_transfers_unaffected_by_imbalance(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 5000).astype(np.float32)
        even = sys_.run(identity_kernel, xs)
        skewed = sys_.run(identity_kernel, xs, imbalance=1.0)
        assert skewed.host_to_pim_seconds == even.host_to_pim_seconds

    def test_negative_imbalance_rejected(self, rng):
        from repro.errors import SimulationError
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 100).astype(np.float32)
        with pytest.raises(SimulationError):
            sys_.run(identity_kernel, xs, imbalance=-0.1)


class TestTransferBalance:
    def test_unbalanced_serializes(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 2000).astype(np.float32)
        par = sys_.run(identity_kernel, xs, virtual_n=10_000_000)
        ser = sys_.run(identity_kernel, xs, virtual_n=10_000_000,
                       balanced_transfers=False)
        assert ser.host_to_pim_seconds > 10 * par.host_to_pim_seconds


class TestRunEdgeCases:
    """Edge cases the span instrumentation walks through (PR 3)."""

    def test_virtual_n_with_small_sample(self, rng):
        # 32 materialized elements standing in for 10M: the tally is an
        # extrapolation, the transfers and DPU split reflect the full size.
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 32).astype(np.float32)
        res = sys_.run(identity_kernel, xs, virtual_n=10_000_000)
        assert res.n_elements == 10_000_000
        assert res.n_dpus_used == 2545
        assert res.per_dpu.n_elements == 10_000_000
        small = sys_.run(identity_kernel, xs)
        assert res.kernel_seconds > small.kernel_seconds

    def test_imbalance_interacts_with_n_dpus_used(self, rng):
        # A straggler slows the launch but does not change how many cores
        # received work.
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 300).astype(np.float32)
        even = sys_.run(identity_kernel, xs)
        skew = sys_.run(identity_kernel, xs, imbalance=0.25)
        assert even.n_dpus_used == skew.n_dpus_used == 300
        assert skew.kernel_seconds == pytest.approx(
            1.25 * even.kernel_seconds, rel=1e-9)
        assert skew.total_seconds > even.total_seconds

    def test_no_transfers_plus_energy(self, rng):
        # Figure 1(c) deployment: no transfer seconds, no transfer bytes,
        # and the energy model charges only the used cores' compute.
        from repro.pim.energy import DEFAULT_ENERGY_MODEL
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 500).astype(np.float32)
        res = sys_.run(identity_kernel, xs, include_transfers=False)
        assert res.host_to_pim_seconds == 0
        assert res.pim_to_host_seconds == 0
        assert res.compute_only_seconds == pytest.approx(res.total_seconds)
        rep = DEFAULT_ENERGY_MODEL.pim_energy(res, 0, 0)
        assert rep.transfer_joules == 0
        assert rep.compute_joules == pytest.approx(
            DEFAULT_ENERGY_MODEL.watts_per_dpu * res.n_dpus_used
            * res.compute_only_seconds)


class TestRunSpanAgreement:
    """SystemRunResult fields and the span tree must tell the same story."""

    def _traced_run(self, rng, **kwargs):
        from repro.obs import Tracer, tracing
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 2000).astype(np.float32)
        with tracing(Tracer()) as tracer:
            res = sys_.run(identity_kernel, xs, **kwargs)
        return tracer.find("system.run"), res

    def test_phase_attributions_sum_to_total(self, rng):
        run_span, res = self._traced_run(rng)
        by_name = {c.name: c.attrs["sim_seconds"] for c in run_span.children}
        assert set(by_name) == {"host_to_pim", "kernel", "pim_to_host",
                                "launch"}
        total = (by_name["kernel"] + by_name["host_to_pim"]
                 + by_name["pim_to_host"] + by_name["launch"])
        assert total == res.total_seconds
        assert by_name["kernel"] == res.kernel_seconds
        assert by_name["host_to_pim"] == res.host_to_pim_seconds
        assert by_name["pim_to_host"] == res.pim_to_host_seconds
        assert by_name["launch"] == res.launch_seconds

    def test_span_attrs_match_result_fields(self, rng):
        run_span, res = self._traced_run(rng, virtual_n=1_000_000)
        assert run_span.attrs["n_elements"] == res.n_elements
        assert run_span.attrs["n_dpus_used"] == res.n_dpus_used
        assert run_span.attrs["sim_seconds"] == res.total_seconds
        kernel = run_span.find("kernel")
        assert kernel.attrs["per_dpu_cycles"] == res.per_dpu.cycles
        assert kernel.attrs["slots"] == res.per_dpu.total_tally.slots

    def test_no_transfer_run_attributes_zero_bytes(self, rng):
        run_span, res = self._traced_run(rng, include_transfers=False)
        h2p = run_span.find("host_to_pim")
        assert h2p.attrs["sim_seconds"] == 0.0
        assert h2p.attrs["bytes"] == 0

    def test_untraced_run_is_identical(self, rng):
        # The null fast path must not perturb the numbers.
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 1000).astype(np.float32)
        from repro.obs import Tracer, tracing
        plain = sys_.run(identity_kernel, xs)
        with tracing(Tracer()):
            traced = sys_.run(identity_kernel, xs)
        assert traced.total_seconds == plain.total_seconds
        assert traced.per_dpu.cycles == plain.per_dpu.cycles
