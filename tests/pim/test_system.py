"""Tests for the multi-core PIM system model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.pim.config import DPUConfig, SystemConfig
from repro.pim.system import PIMSystem


def identity_kernel(ctx, x):
    return ctx.fadd(x, 0.0)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = SystemConfig()
        assert cfg.n_dpus == 2545
        assert cfg.dpu.frequency_mhz == 350.0

    def test_invalid_dpus(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n_dpus=0)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            DPUConfig(frequency_mhz=0)

    def test_transfer_seconds(self):
        cfg = SystemConfig(host_to_pim_bw=1e9, pim_to_host_bw=2e9)
        assert cfg.host_to_pim_seconds(1_000_000) == pytest.approx(1e-3)
        assert cfg.pim_to_host_seconds(1_000_000) == pytest.approx(0.5e-3)


class TestElementsPerDpu:
    def test_even_split(self):
        sys_ = PIMSystem(SystemConfig(n_dpus=10))
        assert sys_.elements_per_dpu(100) == 10

    def test_rounds_up(self):
        sys_ = PIMSystem(SystemConfig(n_dpus=10))
        assert sys_.elements_per_dpu(101) == 11

    def test_fewer_elements_than_dpus(self):
        sys_ = PIMSystem(SystemConfig(n_dpus=10))
        assert sys_.elements_per_dpu(3) == 1


class TestRun:
    def test_timing_components(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 10000).astype(np.float32)
        res = sys_.run(identity_kernel, xs)
        assert res.host_to_pim_seconds > 0
        assert res.pim_to_host_seconds > 0
        assert res.kernel_seconds > 0
        assert res.total_seconds == pytest.approx(
            res.kernel_seconds + res.host_to_pim_seconds
            + res.pim_to_host_seconds + res.launch_seconds
        )

    def test_no_transfers_mode(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 10000).astype(np.float32)
        res = sys_.run(identity_kernel, xs, include_transfers=False)
        assert res.host_to_pim_seconds == 0
        assert res.pim_to_host_seconds == 0
        assert res.compute_only_seconds < sys_.run(identity_kernel, xs).total_seconds

    def test_more_dpus_faster_kernel(self, rng):
        xs = rng.uniform(0, 1, 100000).astype(np.float32)
        small = PIMSystem(SystemConfig(n_dpus=100))
        big = PIMSystem(SystemConfig(n_dpus=2000))
        t_small = small.run(identity_kernel, xs).kernel_seconds
        t_big = big.run(identity_kernel, xs).kernel_seconds
        assert t_big < t_small

    def test_empty_raises(self):
        sys_ = PIMSystem()
        with pytest.raises(SimulationError):
            sys_.run(identity_kernel, np.array([], dtype=np.float32))

    def test_kernel_time_scales_with_share(self, rng):
        # With n_dpus=1 the kernel time equals the single-core time.
        xs = rng.uniform(0, 1, 5000).astype(np.float32)
        sys_ = PIMSystem(SystemConfig(n_dpus=1))
        res = sys_.run(identity_kernel, xs)
        assert res.kernel_seconds == pytest.approx(res.per_dpu.seconds)


class TestImbalance:
    def test_straggler_slows_the_launch(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 5000).astype(np.float32)
        even = sys_.run(identity_kernel, xs, virtual_n=10_000_000)
        skewed = sys_.run(identity_kernel, xs, virtual_n=10_000_000,
                          imbalance=0.5)
        assert skewed.kernel_seconds == pytest.approx(
            1.5 * even.kernel_seconds, rel=1e-9)

    def test_transfers_unaffected_by_imbalance(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 5000).astype(np.float32)
        even = sys_.run(identity_kernel, xs)
        skewed = sys_.run(identity_kernel, xs, imbalance=1.0)
        assert skewed.host_to_pim_seconds == even.host_to_pim_seconds

    def test_negative_imbalance_rejected(self, rng):
        from repro.errors import SimulationError
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 100).astype(np.float32)
        with pytest.raises(SimulationError):
            sys_.run(identity_kernel, xs, imbalance=-0.1)


class TestTransferBalance:
    def test_unbalanced_serializes(self, rng):
        sys_ = PIMSystem()
        xs = rng.uniform(0, 1, 2000).astype(np.float32)
        par = sys_.run(identity_kernel, xs, virtual_n=10_000_000)
        ser = sys_.run(identity_kernel, xs, virtual_n=10_000_000,
                       balanced_transfers=False)
        assert ser.host_to_pim_seconds > 10 * par.host_to_pim_seconds
