"""Tests for the cycle-accurate pipeline simulator, including validation of
the analytic pipeline model against it."""

import numpy as np
import pytest

from repro.api import make_method
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter, Tally
from repro.pim.config import DPUConfig
from repro.pim.exec import Instr, simulate, trace_to_program
from repro.pim.pipeline import PipelineModel

CFG = DPUConfig()
SPACING = CFG.issue_spacing


class TestBasics:
    def test_single_instruction(self):
        res = simulate([[Instr(slots=1)]])
        assert res.cycles == 1
        assert res.issued == 1

    def test_single_tasklet_spacing(self):
        # Two unit instructions of one tasklet are 11 cycles apart.
        res = simulate([[Instr(slots=2)]])
        assert res.cycles == SPACING + 1

    def test_single_tasklet_long_sequence(self):
        res = simulate([[Instr(slots=100)]])
        assert res.cycles == 99 * SPACING + 1

    def test_saturated_pipeline_full_utilization(self):
        programs = [[Instr(slots=100)] for _ in range(SPACING)]
        res = simulate(programs)
        assert res.utilization > 0.99

    def test_two_tasklets_interleave(self):
        res = simulate([[Instr(slots=10)], [Instr(slots=10)]])
        # Throughput doubles vs one tasklet.
        solo = simulate([[Instr(slots=10)]])
        assert res.cycles < solo.cycles * 1.2
        assert res.issued == 20

    def test_empty_program_list_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate([])

    def test_too_many_tasklets_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate([[Instr(slots=1)]] * 30)


class TestDma:
    def test_dma_stalls_single_tasklet(self):
        prog = [Instr(slots=1, dma_cycles=50), Instr(slots=1)]
        res = simulate([prog])
        # Setup issue + 50 DMA cycles + spacing before the next issue.
        assert res.cycles >= 50
        assert res.dma_busy_cycles == 50

    def test_dma_hidden_with_many_tasklets(self):
        with_dma = [[Instr(slots=20, dma_cycles=8), Instr(slots=20)]
                    for _ in range(16)]
        without = [[Instr(slots=20), Instr(slots=20)] for _ in range(16)]
        r_dma = simulate(with_dma)
        r_plain = simulate(without)
        # The 8-cycle transfers hide almost entirely behind other tasklets.
        assert r_dma.cycles < r_plain.cycles * 1.15

    def test_dma_engine_is_serial(self):
        programs = [[Instr(slots=1, dma_cycles=100)] for _ in range(4)]
        res = simulate(programs)
        assert res.cycles >= 400  # four serialized 100-cycle transfers


class TestTraceConversion:
    def test_counter_trace_roundtrip(self):
        trace = []
        ctx = CycleCounter(trace_ops=trace)
        ctx.fmul(1.0, 2.0)
        ctx.iadd(1, 2)
        table = np.arange(4, dtype=np.float32)
        ctx.mram_read(table, 1, elem_bytes=4)
        prog = trace_to_program(trace)
        assert [i.slots for i in prog] == [
            ctx.costs.fp_mul, ctx.costs.int_alu, ctx.costs.mram_dma_setup
        ]
        assert prog[2].dma_cycles > 0

    def test_trace_slots_match_tally(self):
        trace = []
        ctx = CycleCounter(trace_ops=trace)
        ctx.fadd(1.0, 2.0)
        ctx.fdiv(1.0, 3.0)
        assert sum(t[1] for t in trace) == ctx.slots


class TestAnalyticModelValidation:
    """The headline: the closed-form pipeline model tracks the simulator."""

    @staticmethod
    def _method_program(placement="mram"):
        m = make_method("sin", "llut_i", density_log2=10,
                        placement=placement).setup()
        trace = []
        ctx = CycleCounter(trace_ops=trace)
        for x in (0.5, 1.7, 3.1, 4.9, 6.1):
            m.evaluate(ctx, x)
        return trace_to_program(trace), ctx.reset()

    @pytest.mark.parametrize("tasklets", [1, 2, 4, 8, 11, 16])
    def test_model_within_tolerance(self, tasklets):
        prog, tally = self._method_program()
        programs = [list(prog) for _ in range(tasklets)]
        sim = simulate(programs)
        # The analytic model sees the aggregate tally of all tasklets.
        total = Tally(slots=tally.slots * tasklets,
                      dma_latency=tally.dma_latency * tasklets)
        model = PipelineModel(CFG).cycles(total, tasklets)
        assert model == pytest.approx(sim.cycles, rel=0.15), tasklets

    def test_saturation_point_matches(self):
        prog, _ = self._method_program()
        per11 = simulate([list(prog)] * 11).cycles / 11
        per16 = simulate([list(prog)] * 16).cycles / 16
        assert per16 == pytest.approx(per11, rel=0.05)

    def test_wram_vs_mram_gap_small_when_saturated(self):
        prog_m, _ = self._method_program("mram")
        prog_w, _ = self._method_program("wram")
        m = simulate([list(prog_m)] * 16).cycles
        w = simulate([list(prog_w)] * 16).cycles
        assert m < w * 1.1  # Observation 4, from first principles
