"""Tests for the energy model."""

import numpy as np
import pytest

from repro.pim.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.pim.system import PIMSystem


def identity_kernel(ctx, x):
    return ctx.fadd(x, 0.0)


@pytest.fixture(scope="module")
def run_result(rng=np.random.default_rng(5)):
    system = PIMSystem()
    xs = rng.uniform(0, 1, 2000).astype(np.float32)
    return system.run(identity_kernel, xs, virtual_n=10_000_000)


class TestModel:
    def test_pim_power_far_below_cpu(self):
        # ~560 W of DPUs... no: 2545 x 0.22 W = ~560 W? The ratio matters.
        model = DEFAULT_ENERGY_MODEL
        assert model.pim_watts == pytest.approx(2545 * 0.22)

    def test_energy_components(self, run_result):
        model = DEFAULT_ENERGY_MODEL
        rep = model.pim_energy(run_result, bytes_in=40_000_000,
                               bytes_out=40_000_000)
        assert rep.compute_joules > 0
        assert rep.transfer_joules == pytest.approx(80e-12 * 80_000_000)
        assert rep.total_joules == rep.compute_joules + rep.transfer_joules

    def test_cpu_energy_scales_with_time(self):
        model = DEFAULT_ENERGY_MODEL
        assert model.cpu_energy(2.0).compute_joules == \
            pytest.approx(2 * model.cpu_energy(1.0).compute_joules)

    def test_custom_model(self):
        small = EnergyModel(n_dpus=64)
        assert small.pim_watts < DEFAULT_ENERGY_MODEL.pim_watts

    def test_paper_scale_run_uses_all_dpus(self, run_result):
        # The 10M-element runs of the paper fill all 2545 cores, so the
        # n_dpus_used scaling leaves their energy numbers unchanged.
        assert run_result.n_dpus_used == 2545
        model = DEFAULT_ENERGY_MODEL
        assert model.pim_energy(run_result, 0, 0).compute_joules == \
            pytest.approx(model.pim_energy(run_result, 0, 0,
                                           whole_system=True).compute_joules)

    def test_small_run_charged_only_used_dpus(self):
        # A run that occupies 100 cores must not pay 2545 cores' power.
        system = PIMSystem()
        xs = np.random.default_rng(9).uniform(0, 1, 100).astype(np.float32)
        res = system.run(identity_kernel, xs)
        assert res.n_dpus_used == 100
        model = DEFAULT_ENERGY_MODEL
        partial = model.pim_energy(res, 400, 400)
        whole = model.pim_energy(res, 400, 400, whole_system=True)
        assert partial.compute_joules == pytest.approx(
            whole.compute_joules * 100 / 2545)
        assert partial.transfer_joules == whole.transfer_joules

    def test_whole_system_matches_always_on_reading(self):
        # whole_system=True reproduces the pre-fix always-on-DIMM charge.
        system = PIMSystem()
        xs = np.random.default_rng(9).uniform(0, 1, 64).astype(np.float32)
        res = system.run(identity_kernel, xs)
        model = DEFAULT_ENERGY_MODEL
        rep = model.pim_energy(res, 0, 0, whole_system=True)
        assert rep.compute_joules == pytest.approx(
            model.pim_watts * res.compute_only_seconds)


class TestWorkloadEnergy:
    def test_fixed_blackscholes_wins_energy(self):
        """Where PIM wins time (fixed-point Blackscholes), it wins energy."""
        from repro.pim.system import PIMSystem
        from repro.workloads.blackscholes import Blackscholes, generate_options
        from repro.workloads.cpu_model import CPU_BLACKSCHOLES

        n = 10_000_000
        system = PIMSystem()
        batch = generate_options(2000)
        bs = Blackscholes("fixed_full").setup()
        res = bs.run(batch, system, virtual_n=n)

        model = DEFAULT_ENERGY_MODEL
        pim = model.pim_energy(res, bytes_in=20 * n,
                               bytes_out=4 * n)
        cpu = model.cpu_energy(CPU_BLACKSCHOLES.seconds(n, 32),
                               bytes_moved=24 * n)
        assert pim.total_joules < cpu.total_joules

    def test_sigmoid_loses_energy_honestly(self):
        """Where PIM is 2x slower at 2.2x the power, it loses energy — the
        model does not flatter PIM."""
        from repro.workloads.cpu_model import CPU_SIGMOID
        from repro.workloads.sigmoid import Sigmoid, generate_inputs

        n = 30_000_000
        system = PIMSystem()
        xs = generate_inputs(2000)
        sg = Sigmoid("llut_i").setup()
        res = sg.run(xs, system, virtual_n=n)

        model = DEFAULT_ENERGY_MODEL
        pim = model.pim_energy(res, bytes_in=4 * n, bytes_out=4 * n)
        cpu = model.cpu_energy(CPU_SIGMOID.seconds(n, 32), bytes_moved=8 * n)
        assert pim.total_joules > cpu.total_joules

    def test_transfer_energy_negligible_vs_compute(self):
        """Data movement costs time (bandwidth), not joules, at DDR4 scale."""
        from repro.workloads.sigmoid import Sigmoid, generate_inputs
        n = 30_000_000
        system = PIMSystem()
        sg = Sigmoid("llut_i").setup()
        res = sg.run(generate_inputs(2000), system, virtual_n=n)
        rep = DEFAULT_ENERGY_MODEL.pim_energy(res, 4 * n, 4 * n)
        assert rep.transfer_joules < 0.01 * rep.compute_joules
