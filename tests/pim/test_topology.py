"""Topology model: mapping round-trips, rank structure, config back-compat.

Property-based coverage (hypothesis) for the invariants the whole refactor
leans on: the flat usable index space and the hierarchical coordinate
space are bijective (defects and all), rank spans tile the usable space,
rank-aligned shard splits never straddle a rank, and a bare
``SystemConfig(n_dpus=...)`` is indistinguishable from the pre-topology
flat model.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.pim.config import SystemConfig
from repro.pim.topology import PAPER_TOPOLOGY, DPUCoord, Topology


@st.composite
def topologies(draw, max_defects=8):
    """Small random topologies, optionally with a defect mask."""
    channels = draw(st.integers(1, 3))
    dimms = draw(st.integers(1, 3))
    ranks = draw(st.integers(1, 3))
    dpr = draw(st.integers(1, 12))
    physical = channels * dimms * ranks * dpr
    defects = draw(st.sets(st.integers(0, physical - 1),
                           max_size=min(physical - 1, max_defects)))
    return Topology(channels=channels, dimms_per_channel=dimms,
                    ranks_per_dimm=ranks, dpus_per_rank=dpr,
                    defective=tuple(defects))


class TestPaperTopology:
    def test_counts_match_section_4_1(self):
        t = PAPER_TOPOLOGY
        assert t.n_dpus_physical == 2560
        assert t.n_dpus == 2545
        assert len(t.defective) == 15
        assert t.n_dimms == 20
        assert t.n_ranks == 40
        assert t.ranks_per_channel == 20

    def test_default_geometry_is_paper_shape(self):
        t = Topology()
        assert (t.channels, t.dimms_per_channel,
                t.ranks_per_dimm, t.dpus_per_rank) == (2, 10, 2, 64)
        assert t.defective == ()
        assert t.n_dpus == 2560

    def test_signature_is_stable_and_defect_sensitive(self):
        assert Topology().signature() == "2x10x2x64"
        sig = PAPER_TOPOLOGY.signature()
        assert sig.startswith("2x10x2x64-d15-")
        assert sig == PAPER_TOPOLOGY.signature()
        other = Topology(defective=(0,))
        assert other.signature() != sig

    def test_describe_reports_key_facts(self):
        text = PAPER_TOPOLOGY.describe()
        for needle in ("2545", "2560", "per-channel", "signature"):
            assert needle in text

    def test_pickle_round_trip(self):
        clone = pickle.loads(pickle.dumps(PAPER_TOPOLOGY))
        assert clone == PAPER_TOPOLOGY
        assert clone.signature() == PAPER_TOPOLOGY.signature()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Topology(channels=0)
        with pytest.raises(ConfigurationError):
            Topology(channels=1, dimms_per_channel=1, ranks_per_dimm=1,
                     dpus_per_rank=2, defective=(5,))
        with pytest.raises(ConfigurationError):
            Topology(channels=1, dimms_per_channel=1, ranks_per_dimm=1,
                     dpus_per_rank=2, defective=(0, 1))


class TestMappingRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(t=topologies(), data=st.data())
    def test_usable_coord_round_trip(self, t, data):
        """usable -> coord -> usable is the identity, defects included."""
        i = data.draw(st.integers(0, t.n_dpus - 1))
        coord = t.coord_of(i)
        assert t.usable_index(coord) == i
        phys = t.physical_of_coord(coord)
        assert phys not in t.defective
        assert t.usable_of_physical(phys) == i

    @settings(max_examples=40, deadline=None)
    @given(t=topologies())
    def test_usable_order_is_physical_order(self, t):
        """physical_of_usable is strictly increasing and skips defects."""
        phys = [t.physical_of_usable(i) for i in range(t.n_dpus)]
        assert phys == sorted(phys)
        assert len(set(phys)) == t.n_dpus
        assert not set(phys) & set(t.defective)

    @settings(max_examples=40, deadline=None)
    @given(t=topologies())
    def test_defective_slots_have_no_usable_index(self, t):
        for d in t.defective:
            with pytest.raises(ConfigurationError):
                t.usable_of_physical(d)

    @settings(max_examples=40, deadline=None)
    @given(t=topologies(), data=st.data())
    def test_coord_of_physical_round_trip(self, t, data):
        p = data.draw(st.integers(0, t.n_dpus_physical - 1))
        assert t.physical_of_coord(t.coord_of_physical(p)) == p

    def test_out_of_range_rejected(self):
        t = PAPER_TOPOLOGY
        for bad in (-1, t.n_dpus):
            with pytest.raises(ConfigurationError):
                t.physical_of_usable(bad)
        with pytest.raises(ConfigurationError):
            t.physical_of_coord(DPUCoord(2, 0, 0, 0))


class TestRankStructure:
    @settings(max_examples=60, deadline=None)
    @given(t=topologies())
    def test_rank_spans_tile_usable_space(self, t):
        spans = t.rank_spans()
        assert len(spans) == t.n_ranks
        cursor = 0
        for lo, hi in spans:
            assert lo == cursor and hi >= lo
            cursor = hi
        assert cursor == t.n_dpus

    @settings(max_examples=60, deadline=None)
    @given(t=topologies(), data=st.data())
    def test_rank_of_usable_matches_span(self, t, data):
        i = data.draw(st.integers(0, t.n_dpus - 1))
        r = t.rank_of_usable(i)
        lo, hi = t.rank_spans()[r]
        assert lo <= i < hi
        assert t.coord_of(i).channel == t.channel_of_rank(r)

    @settings(max_examples=60, deadline=None)
    @given(t=topologies(), data=st.data())
    def test_split_ranks_is_rank_aligned_and_tiles(self, t, data):
        """Every shard range starts/ends on a rank boundary; ranges are
        consecutive and cover ``[0, n_dpus)`` exactly."""
        non_empty = [s for s in t.rank_spans() if s[1] > s[0]]
        n_shards = data.draw(st.integers(1, len(non_empty)))
        ranges = t.split_ranks(n_shards)
        boundaries = {s[0] for s in non_empty} | {s[1] for s in non_empty}
        cursor = 0
        for lo, hi in ranges:
            assert lo == cursor and hi > lo
            assert lo in boundaries or lo == 0
            assert hi in boundaries
            # No shard straddles a rank partially: the range's endpoints
            # coincide with whole-rank span endpoints.
            cursor = hi
        assert cursor == t.n_dpus
        # Remainder ranks go to the lowest-indexed shards.
        per_shard = [sum(1 for s in non_empty if lo <= s[0] < hi)
                     for lo, hi in ranges]
        assert per_shard == sorted(per_shard, reverse=True)
        assert sum(per_shard) == len(non_empty)

    def test_split_ranks_validation(self):
        t = Topology(channels=1, dimms_per_channel=1, ranks_per_dimm=2,
                     dpus_per_rank=4)
        with pytest.raises(SimulationError):
            t.split_ranks(0)
        with pytest.raises(SimulationError):
            t.split_ranks(3)  # only 2 ranks

    def test_ranks_in_range_counts_touched_ranks(self):
        t = Topology(channels=1, dimms_per_channel=2, ranks_per_dimm=2,
                     dpus_per_rank=4)
        assert t.ranks_in_range(0, 4) == 1
        assert t.ranks_in_range(0, 5) == 2
        assert t.ranks_in_range(3, 9) == 3
        assert t.ranks_in_range(2, 2) == 0

    def test_paper_split_matches_known_values(self):
        assert PAPER_TOPOLOGY.split_ranks(4) == [
            (0, 636), (636, 1272), (1272, 1908), (1908, 2545)]


class TestSubrange:
    @settings(max_examples=60, deadline=None)
    @given(t=topologies(), data=st.data())
    def test_subrange_preserves_count_and_rank_structure(self, t, data):
        start = data.draw(st.integers(0, t.n_dpus - 1))
        stop = data.draw(st.integers(start + 1, t.n_dpus))
        sub = t.subrange(start, stop)
        assert sub.n_dpus == stop - start
        assert sub.n_ranks == t.ranks_in_range(start, stop)

    def test_take_is_prefix_subrange(self):
        t = PAPER_TOPOLOGY
        assert t.take(64) == t.subrange(0, 64)
        assert t.take(64).n_dpus == 64

    def test_subrange_validation(self):
        with pytest.raises(ConfigurationError):
            PAPER_TOPOLOGY.subrange(10, 10)
        with pytest.raises(ConfigurationError):
            PAPER_TOPOLOGY.subrange(0, 2546)


class TestSystemConfigBackCompat:
    def test_default_config_is_paper_topology(self):
        cfg = SystemConfig()
        assert cfg.topology == PAPER_TOPOLOGY
        assert cfg.n_dpus == 2545

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 4096))
    def test_bare_n_dpus_synthesizes_single_rank(self, n):
        """``SystemConfig(n_dpus=n)`` behaves exactly like the flat
        pre-topology model: one rank, no defects, same count."""
        cfg = SystemConfig(n_dpus=n)
        assert cfg.n_dpus == n
        assert cfg.topology == Topology.single_rank(n)
        assert cfg.topology.n_ranks == 1
        # Balanced transfers never consulted the topology before the
        # refactor; they must not now.
        flat = SystemConfig(n_dpus=n, topology=None)
        for nbytes in (0, 1, 4096, 10**7):
            assert cfg.host_to_pim_seconds(nbytes) == \
                flat.host_to_pim_seconds(nbytes)
            assert cfg.pim_to_host_seconds(nbytes) == \
                flat.pim_to_host_seconds(nbytes)

    def test_n_dpus_under_topology_takes_prefix(self):
        cfg = SystemConfig(n_dpus=128, topology=PAPER_TOPOLOGY)
        assert cfg.n_dpus == 128
        assert cfg.topology == PAPER_TOPOLOGY.take(128)

    def test_n_dpus_over_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n_dpus=4096, topology=PAPER_TOPOLOGY)

    def test_subrange_slices_both_fields(self):
        cfg = SystemConfig()
        sub = cfg.subrange(64, 192)
        assert sub.n_dpus == 128
        assert sub.topology == PAPER_TOPOLOGY.subrange(64, 192)
        # Non-sliced fields carry over.
        assert sub.host_to_pim_bw == cfg.host_to_pim_bw

    def test_unbalanced_rank_fanout_divides_serialization(self):
        cfg = SystemConfig()
        serial = cfg.host_to_pim_seconds(10**6, balanced=False)
        fanned = cfg.host_to_pim_seconds(10**6, balanced=False, ranks=8)
        assert fanned == serial / 8
        assert cfg.host_to_pim_seconds(10**6, balanced=False, ranks=1) \
            == serial
        # Balanced transfers ignore the fan-out entirely.
        assert cfg.host_to_pim_seconds(10**6, balanced=True, ranks=8) \
            == cfg.host_to_pim_seconds(10**6)
        assert cfg.pim_to_host_seconds(10**6, balanced=False, ranks=4) \
            == cfg.pim_to_host_seconds(10**6, balanced=False) / 4
