"""Tests for the single-PIM-core kernel runner."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.isa.opcosts import UPMEM_COSTS
from repro.pim.dpu import DPU, LOOP_SLOTS_PER_ELEMENT


def square_kernel(ctx, x):
    return ctx.fmul(x, x)


class TestRunKernel:
    def test_full_trace_when_small(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 16).astype(np.float32)
        res = dpu.run_kernel(square_kernel, xs, sample_size=64)
        assert res.n_elements == 16
        np.testing.assert_array_equal(res.sample_outputs, (xs * xs).astype(np.float32))

    def test_per_element_slots(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 8).astype(np.float32)
        res = dpu.run_kernel(square_kernel, xs)
        assert res.per_element_tally.slots == UPMEM_COSTS.fp_mul

    def test_extrapolation_linear_in_n(self, rng):
        dpu = DPU()
        xs_small = rng.uniform(0, 1, 1000).astype(np.float32)
        xs_big = np.tile(xs_small, 10)
        r_small = dpu.run_kernel(square_kernel, xs_small, sample_size=32)
        r_big = dpu.run_kernel(square_kernel, xs_big, sample_size=32)
        # Same distribution => cycles scale ~linearly with n.
        ratio = r_big.cycles / r_small.cycles
        assert ratio == pytest.approx(10.0, rel=0.1)

    def test_streaming_includes_loop_overhead(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 100).astype(np.float32)
        res = dpu.run_kernel(square_kernel, xs, tasklets=16)
        assert res.total_tally.slots >= 100 * (
            UPMEM_COSTS.fp_mul + LOOP_SLOTS_PER_ELEMENT
        )

    def test_dma_bytes_accounted(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 100).astype(np.float32)
        res = dpu.run_kernel(square_kernel, xs)
        assert res.total_tally.dma_bytes == 100 * 8  # 4 in + 4 out

    def test_empty_input_raises(self):
        dpu = DPU()
        with pytest.raises(SimulationError):
            dpu.run_kernel(square_kernel, np.array([], dtype=np.float32))

    def test_more_tasklets_not_slower(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 512).astype(np.float32)
        c1 = dpu.run_kernel(square_kernel, xs, tasklets=1).cycles
        c16 = dpu.run_kernel(square_kernel, xs, tasklets=16).cycles
        assert c16 < c1

    def test_record_inputs(self, rng):
        dpu = DPU()
        recs = rng.uniform(0, 1, (50, 3)).astype(np.float32)

        def sum3(ctx, rec):
            return ctx.fadd(ctx.fadd(rec[0], rec[1]), rec[2])

        res = dpu.run_kernel(sum3, recs, bytes_in_per_element=12)
        assert res.n_elements == 50
        assert res.per_element_tally.slots == 2 * UPMEM_COSTS.fp_add

    def test_seconds_at_frequency(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 64).astype(np.float32)
        res = dpu.run_kernel(square_kernel, xs)
        assert res.seconds == pytest.approx(res.cycles / 350e6)

    def test_cycles_per_element(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 64).astype(np.float32)
        res = dpu.run_kernel(square_kernel, xs)
        assert res.cycles_per_element == pytest.approx(res.cycles / 64)


class TestMemories:
    def test_dpu_has_configured_memories(self):
        dpu = DPU()
        assert dpu.wram.capacity_bytes == 64 * 1024
        assert dpu.mram.capacity_bytes == 64 * 1024 * 1024

    def test_reset_memory(self):
        dpu = DPU()
        dpu.wram.allocate(1024, "t")
        dpu.reset_memory()
        assert dpu.wram.used_bytes == 0


class TestExactEngine:
    def test_outputs_all_elements(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 40).astype(np.float32)
        res = dpu.run_kernel_exact(square_kernel, xs, tasklets=4)
        np.testing.assert_array_equal(
            res.sample_outputs, (xs * xs).astype(np.float32))

    def test_agrees_with_analytic_model(self, rng):
        from repro.api import make_method
        dpu = DPU()
        m = make_method("sin", "llut_i", density_log2=10).setup()
        xs = rng.uniform(0, 6.28, 64).astype(np.float32)
        exact = dpu.run_kernel_exact(m.evaluate, xs, tasklets=16)
        analytic = dpu.run_kernel(m.evaluate, xs, tasklets=16,
                                  sample_size=64)
        # The analytic run also charges streaming overhead; compare the
        # compute component only, within the validated tolerance.
        compute_model = analytic.total_tally.slots - \
            64 * 8  # LOOP_SLOTS_PER_ELEMENT
        assert exact.cycles == pytest.approx(compute_model, rel=0.2)

    def test_saturation_speedup(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 44).astype(np.float32)
        c1 = dpu.run_kernel_exact(square_kernel, xs, tasklets=1).cycles
        c11 = dpu.run_kernel_exact(square_kernel, xs, tasklets=11).cycles
        assert c11 < c1 / 5

    def test_unit_budget_enforced(self, rng):
        dpu = DPU()
        xs = rng.uniform(0, 1, 64).astype(np.float32)
        with pytest.raises(SimulationError, match="max_units"):
            dpu.run_kernel_exact(square_kernel, xs, max_units=10)
