"""Tests for the fine-grained multithreaded pipeline timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.counter import Tally
from repro.pim.config import DPUConfig
from repro.pim.pipeline import PipelineModel

MODEL = PipelineModel(DPUConfig())


class TestThroughput:
    def test_single_tasklet(self):
        assert MODEL.throughput(1) == pytest.approx(1 / 11)

    def test_saturation_at_issue_spacing(self):
        assert MODEL.throughput(11) == 1.0

    def test_no_gain_beyond_saturation(self):
        assert MODEL.throughput(16) == MODEL.throughput(11) == 1.0

    def test_linear_below_saturation(self):
        assert MODEL.throughput(4) == pytest.approx(4 / 11)

    def test_invalid_tasklets(self):
        with pytest.raises(ConfigurationError):
            MODEL.throughput(0)
        with pytest.raises(ConfigurationError):
            MODEL.throughput(25)


class TestEstimate:
    def test_pure_compute_saturated(self):
        tally = Tally(slots=1000)
        assert MODEL.cycles(tally, 16) == 1000

    def test_pure_compute_single_tasklet(self):
        tally = Tally(slots=1000)
        assert MODEL.cycles(tally, 1) == pytest.approx(11000)

    def test_dma_exposed_at_one_tasklet(self):
        tally = Tally(slots=100, dma_latency=500)
        est = MODEL.estimate(tally, 1)
        assert est.exposed_dma_cycles == pytest.approx(500)
        assert est.total_cycles == pytest.approx(100 * 11 + 500)

    def test_dma_hidden_when_saturated(self):
        tally = Tally(slots=1000, dma_latency=500)
        est = MODEL.estimate(tally, 16)
        assert est.exposed_dma_cycles == 0
        assert est.total_cycles == 1000
        assert est.dma_hidden_fraction == 1.0

    def test_dma_engine_occupancy_floor(self):
        # Even hidden DMA cannot make total cycles drop below engine time.
        tally = Tally(slots=100, dma_latency=5000)
        est = MODEL.estimate(tally, 16)
        assert est.total_cycles == 5000

    def test_partial_overlap(self):
        tally = Tally(slots=1000, dma_latency=110)
        est = MODEL.estimate(tally, 6)
        # overlap = 5/11 of latency hidden
        assert est.exposed_dma_cycles == pytest.approx(110 * (1 - 5 / 11))

    def test_monotone_in_tasklets(self):
        tally = Tally(slots=1000, dma_latency=300)
        cycles = [MODEL.cycles(tally, t) for t in range(1, 17)]
        assert all(a >= b for a, b in zip(cycles, cycles[1:]))

    def test_hidden_fraction_no_dma_is_none(self):
        # No DMA issued: there is nothing to hide, and 0.0 would read as
        # "all latency exposed" — the metrics layer skips None gauges.
        est = MODEL.estimate(Tally(slots=10), 4)
        assert est.dma_hidden_fraction is None
