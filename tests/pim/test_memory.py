"""Tests for the WRAM/MRAM memory-region allocator."""

import numpy as np
import pytest

from repro.errors import MemoryLayoutError
from repro.pim.memory import MemoryRegion


class TestAllocation:
    def test_basic_allocate(self):
        region = MemoryRegion("WRAM", 1024)
        alloc = region.allocate(100, "table")
        assert alloc.offset == 0
        assert alloc.nbytes == 104  # rounded to 8-byte alignment
        assert region.used_bytes == 104

    def test_sequential_offsets(self):
        region = MemoryRegion("WRAM", 1024)
        a = region.allocate(8, "a")
        b = region.allocate(8, "b")
        assert b.offset == a.end == 8

    def test_alignment(self):
        region = MemoryRegion("WRAM", 1024)
        region.allocate(1, "tiny")
        assert region.used_bytes == 8

    def test_overflow_raises(self):
        region = MemoryRegion("WRAM", 64)
        region.allocate(56, "big")
        with pytest.raises(MemoryLayoutError, match="does not fit"):
            region.allocate(16, "too-much")

    def test_exact_fit(self):
        region = MemoryRegion("WRAM", 64)
        region.allocate(64, "all")
        assert region.free_bytes == 0

    def test_negative_size_rejected(self):
        region = MemoryRegion("WRAM", 64)
        with pytest.raises(MemoryLayoutError):
            region.allocate(-1, "bad")

    def test_zero_capacity_rejected(self):
        with pytest.raises(MemoryLayoutError):
            MemoryRegion("X", 0)

    def test_fits(self):
        region = MemoryRegion("WRAM", 64)
        assert region.fits(64)
        assert not region.fits(65)

    def test_reset(self):
        region = MemoryRegion("WRAM", 64)
        region.allocate(32, "x")
        region.reset()
        assert region.used_bytes == 0
        assert region.allocations == []


class TestTables:
    def test_store_and_retrieve(self):
        region = MemoryRegion("MRAM", 1 << 20)
        table = np.arange(100, dtype=np.float32)
        alloc = region.store_table("sin", table)
        assert alloc.nbytes == 400
        np.testing.assert_array_equal(region.table("sin"), table)

    def test_missing_table_raises(self):
        region = MemoryRegion("MRAM", 1024)
        with pytest.raises(MemoryLayoutError, match="no table"):
            region.table("nope")

    def test_wram_sized_lut_capacity(self):
        # A 64 KB scratchpad holds at most 16K float32 entries — the
        # constraint behind the paper's WRAM accuracy ceiling.
        region = MemoryRegion("WRAM", 64 * 1024)
        table = np.zeros(16 * 1024, dtype=np.float32)
        region.store_table("lut", table)
        with pytest.raises(MemoryLayoutError):
            region.allocate(8, "more")
