"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.isa.counter import CycleCounter


@pytest.fixture
def rng():
    """Deterministic RNG for reproducible tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def ctx():
    """A fresh cycle counter with the default UPMEM cost model."""
    return CycleCounter()


@pytest.fixture
def sine_inputs(rng):
    """Uniform random angles in [0, 2*pi), float32 (the paper's microbench)."""
    return rng.uniform(0.0, 2.0 * np.pi, 2048).astype(np.float32)
