"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        for cmd in ("fig5", "fig6", "fig7", "fig8", "fig9", "table2",
                    "explore", "recommend", "breakdown"):
            assert cmd in sub.choices

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "llut_i" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "sqrt" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "sin", "llut_i", "density_log2=10"]) == 0
        out = capsys.readouterr().out
        assert "instruction breakdown" in out
        assert "fmul" in out

    def test_recommend(self, capsys):
        assert main(["recommend", "sin", "--rmse", "1e-4",
                     "--evals", "1000"]) == 0
        out = capsys.readouterr().out
        assert "recommended methods" in out

    def test_fig_quick(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "cordic" in out


class TestNewCommands:
    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "cycle-accurate" in out and "tasklets" in out

    def test_pareto_quick(self, capsys):
        assert main(["pareto", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out

    def test_listing(self, capsys):
        assert main(["listing", "sin", "llut", "density_log2=10"]) == 0
        out = capsys.readouterr().out
        assert "kernel listing" in out and "fadd" in out

    def test_profile(self, capsys):
        assert main(["profile", "sin", "llut_i", "density_log2=10",
                     "--bins", "6"]) == 0
        out = capsys.readouterr().out
        assert "error profile" in out


class TestObservability:
    def test_trace_prints_span_tree(self, capsys):
        assert main(["trace", "sin", "llut_i", "density_log2=10",
                     "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "system.run" in out and "kernel" in out
        assert "host.install" in out
        assert "metrics:" in out and "batch.calls" in out

    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        import json
        path = tmp_path / "trace.json"
        assert main(["trace", "sin", "llut_i", "density_log2=10",
                     "--n", "128", "--json", str(path)]) == 0
        blob = json.loads(path.read_text())
        assert blob["traceEvents"]
        assert {"name", "ph", "ts", "dur"} <= set(blob["traceEvents"][0])

    def test_bench_emit_quick(self, capsys, tmp_path):
        import json
        path = tmp_path / "BENCH_obs.json"
        assert main(["bench", "--quick", "--emit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "bench snapshot" in out
        blob = json.loads(path.read_text())
        assert blob["schema"] == "repro-bench/1"
        assert blob["sections"]["system_phases"]["reconciles"] is True

    def test_trace_and_bench_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        assert "trace" in sub.choices and "bench" in sub.choices


class TestLint:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_strict_flags_seeded_violations(self, capsys):
        assert main(["lint", "--strict", "--passes", "ast",
                     "--extra-module", "tests.lint.broken_kernels"]) == 1
        out = capsys.readouterr().out
        assert "uncounted-op" in out
        assert "broken_kernels.py" in out

    def test_json_output_is_valid(self, capsys):
        import json
        assert main(["lint", "--json", "--passes", "ast,memory"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["passes"] == ["ast", "memory"]
        assert blob["counts"] == {"error": 0, "warning": 0, "suppressed": 0}
        assert blob["violations"] == []

    def test_program_passes_with_baseline(self, capsys, tmp_path):
        import json
        bl = tmp_path / "bl.json"
        bl.write_text(json.dumps(
            {"schema": "repro-lint-baseline/1", "accepted": []}))
        assert main(["lint", "--strict", "--passes",
                     "cache-key,determinism,parallel-safety,obs-contract",
                     "--baseline", str(bl)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_bad_baseline_is_a_usage_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["lint", "--baseline", str(bad)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_write_baseline_snapshots_findings(self, capsys, tmp_path):
        import json
        out_path = tmp_path / "bl.json"
        assert main(["lint", "--passes", "ast",
                     "--extra-module", "tests.lint.broken_kernels",
                     "--write-baseline", str(out_path)]) == 0
        blob = json.loads(out_path.read_text())
        assert blob["schema"] == "repro-lint-baseline/1"
        assert len(blob["accepted"]) > 0
        # Re-running against the snapshot passes: all findings accepted.
        assert main(["lint", "--strict", "--passes", "ast",
                     "--extra-module", "tests.lint.broken_kernels",
                     "--baseline", str(out_path)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_unknown_pass_is_a_usage_error(self, capsys):
        assert main(["lint", "--passes", "bogus"]) == 2
        assert "unknown lint pass" in capsys.readouterr().err

    def test_lint_registered_in_parser(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        assert "lint" in sub.choices


class TestTopologyCommands:
    def test_topology_prints_paper_system(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "2545" in out and "2560" in out
        assert "per-channel" in out
        assert "2x10x2x64-d15-" in out

    def test_topology_overrides(self, capsys):
        assert main(["topology", "--channels", "2", "--dimms", "2",
                     "--ranks", "2", "--dpus-per-rank", "8"]) == 0
        out = capsys.readouterr().out
        assert "2x2x2x8" in out
        assert "64" in out  # usable DPUs

    def test_plan_with_topology_override(self, capsys):
        assert main(["plan", "sin", "llut_i", "density_log2=10",
                     "--dimms", "1", "--ranks", "1"]) == 0
        out = capsys.readouterr().out
        assert "topology" in out
        assert "2x1x1x64" in out

    def test_run_rank_aligned(self, capsys):
        assert main(["run", "sin", "llut_i", "density_log2=10",
                     "--n", "4096", "--shards", "2", "--rank-aligned",
                     "--dimms", "1"]) == 0
        out = capsys.readouterr().out
        assert "rank-aligned" in out

    def test_topology_registered_in_parser(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        assert "topology" in sub.choices
