"""Plan integration of the fused array evaluator (:mod:`repro.batch.vec`).

The evaluator is an acceleration, never a semantic change: a vec-enabled
plan must produce the same :class:`SystemRunResult` and the same ``values``
as a vec-disabled one, the ``vec`` flag must split the plan cache (the
routing is observable behavior: metrics, describe, fallback order), and the
compiled evaluator must live in the pooled table image's ``memo`` so WRAM
and MRAM plans of one geometry share it.
"""

import numpy as np
import pytest

from repro.api import make_method
from repro.obs.metrics import collecting
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.cache import PlanCache
from repro.plan.plan import compile_plan

_F32 = np.float32


def _method(method="llut_i", **kw):
    kw.setdefault("density_log2", 8)
    kw.setdefault("assume_in_range", False)
    return make_method("sin", method, **kw)


@pytest.fixture
def system():
    return PIMSystem(SystemConfig(n_dpus=32))


@pytest.fixture
def xs():
    rng = np.random.default_rng(11)
    return rng.uniform(-4.0, 4.0, 512).astype(_F32)


def _result_fields(r):
    d = r.per_dpu
    return (r.n_elements, r.n_dpus_used, r.tasklets, r.kernel_seconds,
            r.host_to_pim_seconds, r.pim_to_host_seconds, r.launch_seconds,
            d.cycles, d.seconds, d.per_element_tally.slots,
            d.per_element_tally.counts, d.total_tally.slots,
            d.sample_outputs.tobytes())


class TestExecuteEquivalence:
    def test_vec_and_traced_runs_identical(self, system, xs):
        vec_plan = compile_plan(system, _method(), sample_size=64, vec=True)
        raw_plan = compile_plan(system, _method(), sample_size=64, vec=False)
        a = vec_plan.execute(xs)
        b = raw_plan.execute(xs)
        assert _result_fields(a) == _result_fields(b)

    def test_vec_and_traced_runs_identical_cordic(self, system, xs):
        m = "cordic"
        a = compile_plan(system, make_method("sin", m), vec=True).execute(xs)
        b = compile_plan(system, make_method("sin", m), vec=False).execute(xs)
        assert _result_fields(a) == _result_fields(b)

    def test_abstaining_method_still_executes(self, system):
        # Inputs past the CORDIC fx_mul overflow bound: the evaluator
        # abstains and execute() silently uses the traced engine.
        plan = compile_plan(system, make_method("sin", "cordic",
                                                assume_in_range=True))
        huge = np.array([1.0e6] * 8 + [0.5] * 8, dtype=_F32)
        a = plan.execute(huge)
        b = compile_plan(system, make_method("sin", "cordic",
                                             assume_in_range=True),
                         vec=False).execute(huge)
        assert _result_fields(a) == _result_fields(b)

    def test_vec_runs_counted(self, system, xs):
        plan = compile_plan(system, _method(), vec=True)
        with collecting() as reg:
            plan.execute(xs)
        assert reg.counter("batch.vec.runs").value == 1


class TestValues:
    def test_values_match_evaluate_vec(self, system, xs):
        plan = compile_plan(system, _method(), vec=True)
        got = plan.values(xs)
        ref = plan.method.evaluate_vec(xs)
        assert got.dtype == ref.dtype
        np.testing.assert_array_equal(got.view(np.uint32),
                                      ref.view(np.uint32))

    def test_values_preserve_shape(self, system, xs):
        plan = compile_plan(system, _method(), vec=True)
        grid = xs.reshape(32, 16)
        out = plan.values(grid)
        assert out.shape == grid.shape
        np.testing.assert_array_equal(out.ravel(), plan.values(xs))

    def test_values_served_from_memo_on_repeat(self, system, xs):
        plan = compile_plan(system, _method(), vec=True)
        with collecting() as reg:
            plan.values(xs)
            plan.values(xs)
        assert reg.counter("batch.vec.memo.hits").value >= 1
        assert reg.counter("batch.vec.memo.misses").value == 1

    def test_no_vec_values_still_exact(self, system, xs):
        plan = compile_plan(system, _method(), vec=False)
        np.testing.assert_array_equal(
            plan.values(xs).view(np.uint32),
            plan.method.evaluate_vec(xs).view(np.uint32))


class TestCacheKeying:
    def test_vec_flag_splits_cache(self, system):
        cache = PlanCache()
        a = cache.plan(system, _method(), vec=True)
        b = cache.plan(system, _method(), vec=False)
        assert a is not b
        assert cache.misses == 2
        assert a.vec_enabled and not b.vec_enabled

    def test_same_vec_flag_hits(self, system):
        cache = PlanCache()
        a = cache.plan(system, _method(), vec=True)
        b = cache.plan(system, _method(), vec=True)
        assert a is b

    def test_key_for_carries_vec(self, system):
        cache = PlanCache()
        k1 = cache.key_for(system, _method().setup(), vec=True)
        k2 = cache.key_for(system, _method().setup(), vec=False)
        assert k1 != k2
        assert k1.vec and not k2.vec


class TestEvaluatorSharing:
    def test_shared_across_placements(self, system, xs):
        # One table image, two placements: the evaluator rides the pooled
        # memo, so the second placement pays no compile and reuses the
        # memoized array passes for equal inputs.
        cache = PlanCache()
        wram = cache.plan(system, _method(placement="wram"))
        wram.execute(xs)
        ev = wram.memo.get("vec_evaluator")
        assert ev is not None
        mram = cache.plan(system, _method(placement="mram"))
        assert cache.table_hits == 1
        assert mram.memo is wram.memo
        with collecting() as reg:
            mram.execute(xs)
        assert mram.memo.get("vec_evaluator") is ev
        # Same digest -> memo hit, no second fused pass.
        assert reg.counter("batch.vec.memo.misses").value == 0
        assert reg.counter("batch.vec.memo.hits").value == 1

    def test_placements_still_tally_faithfully(self, system, xs):
        # Sharing the evaluator must not share placement-dependent costs.
        cache = PlanCache()
        wram = cache.plan(system, _method(placement="wram")).execute(xs)
        mram = cache.plan(system, _method(placement="mram")).execute(xs)
        assert (wram.per_dpu.total_tally.slots
                != mram.per_dpu.total_tally.slots)

    def test_describe_reports_vec(self, system):
        on = compile_plan(system, _method(), vec=True).describe()
        off = compile_plan(system, _method(), vec=False).describe()
        assert "vec evaluator" in on and "enabled" in on
        assert "vec evaluator" in off and "disabled" in off
