"""Tests for the sharded dispatcher and its overlap timeline."""

import numpy as np
import pytest

from repro.api import make_method
from repro.errors import SimulationError
from repro.obs.metrics import collecting
from repro.obs.tracer import Tracer, tracing
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.dispatch import execute_sharded, shard_split, spawn_shard_rngs
from repro.plan.plan import compile_plan

_F32 = np.float32


@pytest.fixture
def system():
    return PIMSystem(SystemConfig(n_dpus=64))


@pytest.fixture
def plan(system):
    m = make_method("sin", "llut_i", density_log2=8, assume_in_range=False)
    return compile_plan(system, m)


@pytest.fixture
def xs(rng):
    return rng.uniform(-4, 4, 4000).astype(_F32)


class TestShardSplit:
    def test_even_split(self):
        assert shard_split(100, 64, 4) == [(25, 16)] * 4

    def test_remainders_go_to_low_shards(self):
        assert shard_split(10, 7, 3) == [(4, 3), (3, 2), (3, 2)]

    def test_totals_preserved(self):
        for n, d, s in ((1000, 64, 5), (17, 13, 13), (2545, 2545, 7)):
            split = shard_split(n, d, s)
            assert sum(ne for ne, _ in split) == n
            assert sum(nd for _, nd in split) == d

    def test_validation(self):
        with pytest.raises(SimulationError):
            shard_split(100, 64, 0)
        with pytest.raises(SimulationError):
            shard_split(100, 4, 5)  # more shards than DPUs
        with pytest.raises(SimulationError):
            shard_split(3, 64, 4)  # more shards than elements


class TestSerialDispatch:
    def test_single_shard_matches_plain_execute(self, plan, xs):
        direct = plan.execute(xs)
        sharded = execute_sharded(plan, xs, n_shards=1)
        assert sharded.total_seconds == direct.total_seconds
        assert sharded.kernel_seconds == direct.kernel_seconds
        assert sharded.n_dpus_used == direct.n_dpus_used

    def test_total_is_exact_running_sum(self, plan, xs):
        r = execute_sharded(plan, xs, n_shards=3, overlap=False)
        total = 0.0
        for s in r.shards:
            assert s.start_seconds == total
            total += s.result.total_seconds
            assert s.finish_seconds == total
        assert r.total_seconds == total
        assert r.serial_seconds == total
        assert r.overlap_saving_seconds == 0.0

    def test_duck_typed_result_surface(self, plan, xs):
        r = execute_sharded(plan, xs, n_shards=4)
        assert r.n_elements == len(xs)
        assert r.n_dpus_used == sum(s.result.n_dpus_used for s in r.shards)
        assert r.kernel_seconds == max(s.result.kernel_seconds
                                       for s in r.shards)
        assert r.host_to_pim_seconds == sum(s.result.host_to_pim_seconds
                                            for s in r.shards)
        assert r.pim_to_host_seconds == sum(s.result.pim_to_host_seconds
                                            for s in r.shards)
        slowest = max(r.shards, key=lambda s: s.result.kernel_seconds)
        assert r.per_dpu is slowest.result.per_dpu
        assert r.compute_only_seconds == slowest.result.compute_only_seconds


class TestOverlapDispatch:
    def test_overlap_recurrence(self, plan, xs):
        r = execute_sharded(plan, xs, n_shards=4, overlap=True)
        h2p_done = p2h_done = 0.0
        for s in r.shards:
            assert s.start_seconds == h2p_done
            h2p_done += s.result.host_to_pim_seconds
            k_done = (h2p_done + s.result.launch_seconds
                      + s.result.kernel_seconds)
            p2h_done = max(k_done, p2h_done) + s.result.pim_to_host_seconds
            assert s.finish_seconds == p2h_done
        assert r.total_seconds == p2h_done

    def test_overlap_saves_time(self, plan, xs):
        serial = execute_sharded(plan, xs, n_shards=4, overlap=False)
        pipelined = execute_sharded(plan, xs, n_shards=4, overlap=True)
        assert pipelined.total_seconds < serial.total_seconds
        assert pipelined.overlap_saving_seconds > 0.0
        # Overlap can never beat the slowest single resource chain.
        assert pipelined.total_seconds >= pipelined.host_to_pim_seconds
        assert pipelined.total_seconds >= pipelined.pim_to_host_seconds


class TestImbalance:
    def test_per_shard_imbalance(self, plan, xs):
        base = execute_sharded(plan, xs, n_shards=2)
        skew = execute_sharded(plan, xs, n_shards=2, imbalance=[0.0, 0.5])
        assert (skew.shards[0].result.kernel_seconds
                == base.shards[0].result.kernel_seconds)
        assert skew.shards[1].result.kernel_seconds == pytest.approx(
            base.shards[1].result.kernel_seconds * 1.5, rel=1e-12)

    def test_scalar_imbalance_applies_everywhere(self, plan, xs):
        r = execute_sharded(plan, xs, n_shards=2, imbalance=0.25)
        assert all(s.result.imbalance == 0.25 for s in r.shards)

    def test_wrong_length_rejected(self, plan, xs):
        with pytest.raises(SimulationError):
            execute_sharded(plan, xs, n_shards=3, imbalance=[0.1, 0.2])


class TestSharedTracing:
    def test_shards_share_parent_tally_cache(self, plan, xs):
        assert len(plan.tally_cache) == 0
        execute_sharded(plan, xs, n_shards=4)
        paths = len(plan.tally_cache)
        assert paths > 0
        # A second dispatch re-traces nothing.
        execute_sharded(plan, xs, n_shards=4)
        assert len(plan.tally_cache) == paths

    def test_virtual_n_sharding(self, plan, rng):
        sample = rng.uniform(-4, 4, 512).astype(_F32)
        r = execute_sharded(plan, sample, n_shards=3, virtual_n=90_000)
        assert r.n_elements == 90_000
        assert sum(s.n_elements for s in r.shards) == 90_000
        # Every shard saw the whole sample, virtually sized.
        assert all(s.result.virtual_n == s.n_elements for s in r.shards)

    def test_record_inputs_shard_along_rows(self, system, rng):
        def first_field(ctx, row):
            return ctx.fadd(row[0], 1.0)

        records = rng.uniform(0, 1, (600, 5)).astype(_F32)
        plan = compile_plan(system, first_field)
        r = execute_sharded(plan, records, n_shards=3)
        assert r.n_elements == 600
        assert [s.n_elements for s in r.shards] == [200, 200, 200]

    def test_empty_input_rejected(self, plan):
        with pytest.raises(SimulationError):
            execute_sharded(plan, np.empty(0, dtype=_F32), n_shards=2)


class TestRngThreading:
    """Per-shard generators: one seed reproduces the whole dispatch."""

    def test_spawn_none_passthrough(self):
        assert spawn_shard_rngs(None, 3) == [None, None, None]

    def test_spawn_children_are_independent_and_reproducible(self):
        a = spawn_shard_rngs(np.random.default_rng(7), 3)
        b = spawn_shard_rngs(np.random.default_rng(7), 3)
        draws_a = [g.integers(0, 1 << 30, size=4).tolist() for g in a]
        draws_b = [g.integers(0, 1 << 30, size=4).tolist() for g in b]
        assert draws_a == draws_b  # same parent seed -> same children
        assert len({tuple(d) for d in draws_a}) == 3  # distinct streams

    def test_same_seed_reproduces_sharded_dispatch(self, plan, xs):
        r1 = execute_sharded(plan, xs, n_shards=4,
                             rng=np.random.default_rng(11))
        r2 = execute_sharded(plan, xs, n_shards=4,
                             rng=np.random.default_rng(11))
        assert r1.total_seconds == r2.total_seconds
        for s1, s2 in zip(r1.shards, r2.shards):
            assert s1.result.kernel_seconds == s2.result.kernel_seconds

    def test_shard_result_independent_of_sibling_shards(self, plan, xs):
        # Regression: the dispatcher used to forward ONE generator into
        # every shard, so shard i's sample draw depended on how many
        # shards ran before it.  With spawned children, shard i run in
        # isolation is bit-identical to shard i inside the dispatch — the
        # property a process pool requires.
        from dataclasses import replace

        n_shards = 3
        r = execute_sharded(plan, xs, n_shards=n_shards,
                            rng=np.random.default_rng(23))
        split = shard_split(len(xs), plan.system.config.n_dpus, n_shards)
        children = spawn_shard_rngs(np.random.default_rng(23), n_shards)
        offset = 0
        for i, (n_i, dpus_i) in enumerate(split):
            sub = PIMSystem(replace(plan.system.config, n_dpus=dpus_i),
                            plan.system.costs)
            alone = plan.for_system(sub).execute(
                xs[offset:offset + n_i], rng=children[i])
            offset += n_i
            assert alone.kernel_seconds == r.shards[i].result.kernel_seconds
            assert alone.total_seconds == r.shards[i].result.total_seconds


class TestObservability:
    def test_spans_reconcile_with_totals(self, plan, xs):
        tracer = Tracer()
        with tracing(tracer):
            r = execute_sharded(plan, xs, n_shards=3, overlap=True)
        dsp = tracer.find("dispatch.run")
        assert dsp is not None
        assert dsp.attrs["sim_seconds"] == r.total_seconds
        assert dsp.attrs["serial_seconds"] == r.serial_seconds
        shard_spans = [c for c in dsp.children if c.name == "shard"]
        assert len(shard_spans) == 3
        for sp, s in zip(shard_spans, r.shards):
            assert sp.attrs["index"] == s.index
            assert sp.attrs["sim_seconds"] == s.result.total_seconds
            assert sp.attrs["start_seconds"] == s.start_seconds
            assert sp.attrs["finish_seconds"] == s.finish_seconds
            assert sp.find("shard.execute") is not None

    def test_metrics(self, plan, xs):
        with collecting() as reg:
            execute_sharded(plan, xs, n_shards=4, overlap=True)
        assert reg.value("dispatch.runs") == 1
        assert reg.value("dispatch.shards") == 4
        g = reg.gauge("dispatch.overlap_saving_seconds")
        assert g.count == 1 and g.last > 0.0


class _StubPlan:
    """A plan whose shard executions return pre-crafted timing results.

    Lets the overlap arithmetic be checked against a hand-computed
    timeline with exactly-representable floats, independent of any
    kernel simulation.
    """

    def __init__(self, system, queued):
        self.system = system
        self.tasklets = 12
        self._queued = list(queued)

    def for_system(self, sub):
        return self

    def execute(self, xs, *, virtual_n=None, rng=None, batch=True,
                imbalance=None, span_name="plan.execute"):
        return self._queued.pop(0)


def _stub_result(h2p, launch, kernel, p2h):
    from repro.isa.counter import Tally
    from repro.pim.dpu import KernelResult
    per_dpu = KernelResult(
        n_elements=1, tasklets=12, per_element_tally=Tally(),
        total_tally=Tally(), cycles=0.0, seconds=kernel,
        sample_outputs=np.zeros(1, dtype=_F32),
    )
    from repro.pim.system import SystemRunResult
    return SystemRunResult(
        n_elements=4, n_dpus_used=32, tasklets=12,
        kernel_seconds=kernel, host_to_pim_seconds=h2p,
        pim_to_host_seconds=p2h, launch_seconds=launch, per_dpu=per_dpu,
    )


class TestOverlapExactArithmetic:
    """Hand-computed two-shard timeline, checked with exact equality.

    shard 0: h2p=1.0,  launch=0.25, kernel=2.0, p2h=0.5
    shard 1: h2p=0.75, launch=0.25, kernel=1.5, p2h=0.5

        h2p_done = [1.0, 1.75]
        k_done   = [1.0+0.25+2.0, 1.75+0.25+1.5] = [3.25, 3.5]
        p2h_done = [max(3.25,0)+0.5, max(3.5, 3.75)+0.5] = [3.75, 4.25]

    so total = 4.25, serial = 3.75 + 3.0 = 6.75 and the gather queueing
    delay makes the saving exactly 6.75 - 4.25 = 2.5.  Every number is a
    small dyadic rational, exact in float64.
    """

    def test_two_shard_timeline(self, system):
        plan = _StubPlan(system, [
            _stub_result(1.0, 0.25, 2.0, 0.5),
            _stub_result(0.75, 0.25, 1.5, 0.5),
        ])
        xs = np.linspace(0.0, 1.0, 8, dtype=_F32)
        with collecting() as reg:
            r = execute_sharded(plan, xs, n_shards=2, overlap=True)
        assert r.total_seconds == 4.25
        assert r.serial_seconds == 6.75
        assert r.overlap_saving_seconds == 2.5
        assert (r.shards[0].start_seconds, r.shards[0].finish_seconds) \
            == (0.0, 3.75)
        assert (r.shards[1].start_seconds, r.shards[1].finish_seconds) \
            == (1.0, 4.25)
        g = reg.gauge("dispatch.overlap_saving_seconds")
        assert g.count == 1 and g.last == 2.5

    def test_serial_dispatch_is_running_sum(self, system):
        plan = _StubPlan(system, [
            _stub_result(1.0, 0.25, 2.0, 0.5),
            _stub_result(0.75, 0.25, 1.5, 0.5),
        ])
        xs = np.linspace(0.0, 1.0, 8, dtype=_F32)
        r = execute_sharded(plan, xs, n_shards=2, overlap=False)
        assert r.total_seconds == 6.75
        assert r.overlap_saving_seconds == 0.0
        assert (r.shards[0].start_seconds, r.shards[0].finish_seconds) \
            == (0.0, 3.75)
        assert (r.shards[1].start_seconds, r.shards[1].finish_seconds) \
            == (3.75, 6.75)
