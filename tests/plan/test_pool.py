"""Pool-vs-inline differential harness plus pool fault injection.

The tentpole guarantee of :mod:`repro.plan.pool` is that a pooled sharded
dispatch is pure *mechanism*: for every supported (function, method) pair,
``execute_sharded(plan, xs, workers=W)`` produces values, slots, tallies,
and span-reconciled timings bit-identical to the inline shard loop — under
both ``fork`` and ``spawn`` worker start methods.  No approx anywhere;
every assertion is ``==``.

A fast subset runs in tier-1; the full ``METHOD_SUPPORT`` matrix is
``slow``-marked and runs in CI's pool step.  Fault-injection tests drive a
worker that raises, hangs past the dispatch timeout, or dies mid-shard,
and assert the failure surfaces as a clean :class:`repro.errors.PoolError`
with no orphaned shared-memory segments and no half-aggregated result.
"""

import os
import time

import numpy as np
import pytest

from repro.api import make_method
from repro.core.functions.support import METHOD_SUPPORT
from repro.errors import (ConfigurationError, PoolError, PoolTimeoutError,
                          TransPimError)
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.tracer import Tracer, tracing
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.dispatch import execute_sharded, shard_split
from repro.plan.plan import compile_plan
from repro.plan.pool import ShardPool, active_segments
from repro.analysis.sweep import default_inputs

_F32 = np.float32

_SYSTEM = PIMSystem(SystemConfig(n_dpus=64))

START_METHODS = ("fork", "spawn")

# Compiled plans reused across the fast and slow suites (and both start
# methods); plans are launch-configuration state, not per-run state.
_PLANS = {}


def _plan_for(function: str, method: str):
    key = (function, method)
    if key not in _PLANS:
        m = make_method(function, method, assume_in_range=False)
        _PLANS[key] = compile_plan(_SYSTEM, m, sample_size=48)
    return _PLANS[key]


def _inputs_for(function: str, n: int) -> np.ndarray:
    return default_inputs(function, n=n, seed=11, in_natural_range=False)


# Module-scoped pools, one per start method: plans ship once, workers
# stay warm across the whole matrix.
@pytest.fixture(scope="module", params=START_METHODS)
def pool(request):
    p = ShardPool(2, start_method=request.param, timeout=120.0)
    yield p
    p.close()


def _shard_attrs(tracer):
    """The per-shard span attrs that must reconcile, in shard order."""
    keys = ("sim_seconds", "host_to_pim", "kernel", "pim_to_host",
            "launch", "start_seconds", "finish_seconds")
    dispatch = tracer.find("dispatch.run")
    assert dispatch is not None
    out = []
    for child in dispatch.children:
        if child.name == "shard":
            out.append({k: child.attrs[k] for k in keys})
    return out


def _assert_pool_matches_inline(function: str, method: str, pool,
                                n: int = 600, n_shards: int = 4,
                                overlap: bool = True) -> None:
    plan = _plan_for(function, method)
    xs = _inputs_for(function, n)

    tr_i = Tracer()
    with tracing(tr_i):
        inline = execute_sharded(plan, xs, n_shards=n_shards,
                                 overlap=overlap,
                                 rng=np.random.default_rng(5))
    tr_p = Tracer()
    with tracing(tr_p):
        pooled = execute_sharded(plan, xs, n_shards=n_shards,
                                 overlap=overlap,
                                 rng=np.random.default_rng(5), pool=pool)

    # Timings, bit for bit.
    assert pooled.total_seconds == inline.total_seconds
    assert pooled.serial_seconds == inline.serial_seconds
    assert pooled.overlap_saving_seconds == inline.overlap_saving_seconds
    assert pooled.kernel_seconds == inline.kernel_seconds
    assert pooled.host_to_pim_seconds == inline.host_to_pim_seconds
    assert pooled.pim_to_host_seconds == inline.pim_to_host_seconds
    assert pooled.launch_seconds == inline.launch_seconds

    # Per-shard results: values, slots, tallies, timeline offsets.
    assert len(pooled.shards) == len(inline.shards) == n_shards
    for a, b in zip(inline.shards, pooled.shards):
        assert b.n_elements == a.n_elements
        assert b.n_dpus == a.n_dpus
        assert b.start_seconds == a.start_seconds
        assert b.finish_seconds == a.finish_seconds
        ra, rb = a.result, b.result
        assert rb.total_seconds == ra.total_seconds
        assert rb.kernel_seconds == ra.kernel_seconds
        assert rb.per_dpu.cycles == ra.per_dpu.cycles
        assert rb.per_dpu.total_tally.slots == ra.per_dpu.total_tally.slots
        assert rb.per_dpu.total_tally.counts == ra.per_dpu.total_tally.counts
        np.testing.assert_array_equal(rb.per_dpu.sample_outputs,
                                      ra.per_dpu.sample_outputs)

    # Span reconciliation: identical shard attrs, and the grafted worker
    # subtree keeps the inline tree shape (shard > shard.execute).
    assert _shard_attrs(tr_p) == _shard_attrs(tr_i)
    for child in tr_p.find("dispatch.run").children:
        if child.name == "shard":
            assert any(c.name == "shard.execute" for c in child.children)


# ----------------------------------------------------------------------
# Fast tier-1 subset: one pair per method family, both start methods.

FAST_PAIRS = [
    ("sin", "mlut_i"),
    ("exp", "slut_i"),
    ("tanh", "cordic_lut"),
]


@pytest.mark.parametrize("function,method", FAST_PAIRS,
                         ids=[f"{m}-{f}" for f, m in FAST_PAIRS])
def test_pool_matches_inline_fast(function, method, pool):
    _assert_pool_matches_inline(function, method, pool)


def test_pool_serial_dispatch_matches(pool):
    _assert_pool_matches_inline("sin", "mlut_i", pool, overlap=False)


# ----------------------------------------------------------------------
# Full matrix, slow-marked (CI pool step): every supported pair.

FULL_MATRIX = [
    (method, function)
    for method, functions in sorted(METHOD_SUPPORT.items())
    for function in sorted(functions)
]


@pytest.mark.slow
@pytest.mark.parametrize("method,function", FULL_MATRIX,
                         ids=[f"{m}-{f}" for m, f in FULL_MATRIX])
def test_pool_matches_inline_full_matrix(method, function, pool):
    try:
        _plan_for(function, method)
    except ConfigurationError as exc:
        pytest.skip(f"unsupported configuration: {exc}")
    _assert_pool_matches_inline(function, method, pool, n=72)


# ----------------------------------------------------------------------
# Worker-utilization gauge and metric merging.

def test_pool_metrics_and_utilization_gauge(pool):
    plan = _plan_for("sin", "mlut_i")
    xs = _inputs_for("sin", 600)
    reg = MetricsRegistry()
    with collecting(reg):
        execute_sharded(plan, xs, n_shards=4, pool=pool)
    assert reg.value("dispatch.runs") == 1
    assert reg.value("dispatch.shards") == 4
    assert reg.value("dispatch.pool.dispatches") == 1
    assert reg.value("dispatch.pool.tasks") == 4
    # Worker-side counters merged into the parent registry.
    assert reg.value("plan.executions") == 4
    assert reg.value("dpu.kernel_runs") > 0
    util = reg.gauge("dispatch.pool.worker_utilization")
    assert util.count == 1
    assert 0.0 < util.last <= 1.0


def test_plan_ships_once_per_pool():
    plan = _plan_for("sin", "mlut_i")
    xs = _inputs_for("sin", 600)
    reg = MetricsRegistry()
    before = active_segments()
    with ShardPool(2, start_method="fork") as p, collecting(reg):
        execute_sharded(plan, xs, n_shards=2, pool=p)
        execute_sharded(plan, xs, n_shards=4, pool=p)
        assert reg.value("dispatch.pool.shipments") == 1
        assert len(active_segments()) == len(before) + 1
    assert active_segments() == before


# ----------------------------------------------------------------------
# Fault injection.  The kernels live at module level so spawn workers can
# unpickle them by qualified name; each trips on a sentinel input value
# that the tests plant in exactly one shard's contiguous slice.

_BOOM = 999.0   # worker raises
_HANG = 888.0   # worker sleeps past the dispatch timeout
_DIE = 777.0    # worker process exits hard mid-shard


def _fault_kernel(counter, x):
    xf = float(x)
    if xf == _BOOM:
        raise ValueError("injected shard fault")
    if xf == _HANG:
        time.sleep(30.0)
    if xf == _DIE:
        os._exit(13)
    return counter.fadd(x, np.float32(1.0))


def _inputs_with_fault(n: int, n_shards: int, shard_k: int,
                       sentinel: float) -> np.ndarray:
    """Benign inputs with shard ``shard_k``'s whole slice set to sentinel."""
    xs = np.full(n, 0.5, dtype=_F32)
    split = shard_split(n, _SYSTEM.config.n_dpus, n_shards)
    offset = sum(ne for ne, _ in split[:shard_k])
    xs[offset:offset + split[shard_k][0]] = _F32(sentinel)
    return xs


def _fault_plan():
    # sample_size >= per-shard slice so the sentinel always executes.
    return compile_plan(_SYSTEM, _fault_kernel, sample_size=64)


class TestFaultInjection:
    def test_worker_raise_surfaces_as_pool_error(self):
        plan = _fault_plan()
        xs = _inputs_with_fault(64, 4, shard_k=2, sentinel=_BOOM)
        before = active_segments()
        pool = ShardPool(2, start_method="fork")
        with pytest.raises(PoolError) as err:
            execute_sharded(plan, xs, n_shards=4, batch=False, pool=pool)
        assert err.value.shard_index == 2
        assert "injected shard fault" in str(err.value)
        assert "ValueError" in str(err.value)
        assert pool.closed  # a failed dispatch closes the pool
        assert active_segments() == before  # no orphaned segments

    def test_worker_raise_is_a_transpim_error(self):
        plan = _fault_plan()
        xs = _inputs_with_fault(64, 2, shard_k=0, sentinel=_BOOM)
        before = active_segments()
        with pytest.raises(TransPimError):
            execute_sharded(plan, xs, n_shards=2, batch=False, workers=2)
        assert active_segments() == before

    def test_worker_hang_times_out(self):
        plan = _fault_plan()
        xs = _inputs_with_fault(64, 2, shard_k=1, sentinel=_HANG)
        before = active_segments()
        pool = ShardPool(2, start_method="fork")
        t0 = time.monotonic()
        with pytest.raises(PoolTimeoutError):
            execute_sharded(plan, xs, n_shards=2, batch=False, pool=pool,
                            timeout=1.5)
        assert time.monotonic() - t0 < 20.0  # well under the 30s sleep
        assert pool.closed
        assert active_segments() == before

    def test_worker_death_mid_shard(self):
        plan = _fault_plan()
        xs = _inputs_with_fault(64, 2, shard_k=1, sentinel=_DIE)
        before = active_segments()
        pool = ShardPool(2, start_method="fork")
        with pytest.raises(PoolError):
            execute_sharded(plan, xs, n_shards=2, batch=False, pool=pool)
        assert pool.closed
        assert active_segments() == before

    def test_no_half_aggregated_state_on_failure(self):
        """A failed dispatch must not leak spans, metrics, or records."""
        plan = _fault_plan()
        xs = _inputs_with_fault(64, 4, shard_k=3, sentinel=_BOOM)
        tracer = Tracer()
        reg = MetricsRegistry()
        with tracing(tracer), collecting(reg):
            with pytest.raises(PoolError):
                execute_sharded(plan, xs, n_shards=4, batch=False,
                                workers=2)
        # No shard results were aggregated: the dispatch-level counters
        # and the reconciliation gauge never fired.
        assert reg.value("dispatch.runs") == 0
        assert reg.value("dispatch.shards") == 0
        dispatch = tracer.find("dispatch.run")
        assert dispatch is not None  # the span closed despite the raise
        assert all(c.name != "shard" for c in dispatch.children)

    def test_closed_pool_refuses_dispatch(self):
        plan = _fault_plan()
        xs = np.full(64, 0.5, dtype=_F32)
        pool = ShardPool(2, start_method="fork")
        pool.close()
        with pytest.raises(PoolError):
            execute_sharded(plan, xs, n_shards=2, batch=False, pool=pool)


def test_pool_rejects_bad_workers():
    with pytest.raises(ConfigurationError):
        ShardPool(0)


class TestTopologyPlacement:
    """NUMA-aware pool construction: per-channel worker groups, channel
    affinity routing, and best-effort CPU pinning."""

    def test_workers_default_one_per_channel(self):
        from repro.pim.topology import PAPER_TOPOLOGY
        pool = ShardPool(start_method="fork", topology=PAPER_TOPOLOGY)
        try:
            assert pool.workers == PAPER_TOPOLOGY.channels == 2
            assert len(pool._executors) == 2
        finally:
            pool.close()

    def test_workers_required_without_topology(self):
        with pytest.raises(ConfigurationError):
            ShardPool()

    def test_single_group_without_topology(self):
        pool = ShardPool(4, start_method="fork")
        try:
            assert len(pool._executors) == 1
        finally:
            pool.close()

    def test_groups_capped_by_workers(self):
        from repro.pim.topology import PAPER_TOPOLOGY
        pool = ShardPool(1, start_method="fork", topology=PAPER_TOPOLOGY)
        try:
            assert len(pool._executors) == 1
        finally:
            pool.close()

    def test_pinned_dispatch_is_bit_identical_and_counted(self):
        """Pinning is placement-only: results match the unpinned pool
        bit for bit, and every task is counted as pinned."""
        from repro.pim.config import SystemConfig
        from repro.pim.system import PIMSystem
        from repro.plan.plan import compile_plan

        topo_system = PIMSystem(SystemConfig())
        m = make_method("sin", "llut_i", assume_in_range=False)
        plan = compile_plan(topo_system, m, sample_size=48)
        xs = _inputs_for("sin", 1200)
        baseline = execute_sharded(plan, xs, n_shards=2, rank_aligned=True)
        pool = ShardPool(2, start_method="fork", timeout=120.0,
                         topology=topo_system.config.topology, pin=True)
        try:
            with collecting() as reg:
                pinned = execute_sharded(plan, xs, n_shards=2,
                                         rank_aligned=True, pool=pool)
        finally:
            pool.close()
        assert reg.value("dispatch.pool.pinned") == 2
        assert pinned.total_seconds == baseline.total_seconds
        for sa, sb in zip(baseline.shards, pinned.shards):
            assert sa.result.total_seconds == sb.result.total_seconds

    def test_pinned_shard_spans_carry_placement_attrs(self):
        from repro.pim.config import SystemConfig
        from repro.pim.system import PIMSystem
        from repro.plan.plan import compile_plan

        topo_system = PIMSystem(SystemConfig())
        m = make_method("sin", "llut_i", assume_in_range=False)
        plan = compile_plan(topo_system, m, sample_size=48)
        xs = _inputs_for("sin", 1200)
        topo = topo_system.config.topology
        pool = ShardPool(2, start_method="fork", timeout=120.0,
                         topology=topo, pin=True)
        tracer = Tracer()
        try:
            with tracing(tracer):
                execute_sharded(plan, xs, n_shards=2, rank_aligned=True,
                                pool=pool)
        finally:
            pool.close()
        dsp = tracer.find("dispatch.run")
        shard_spans = [c for c in dsp.children if c.name == "shard"]
        spans = topo.split_ranks(2)
        assert [s.attrs["channel"] for s in shard_spans] == \
            [topo.channel_of_range(lo, hi) for lo, hi in spans]
        assert all(s.attrs["pinned"] is True for s in shard_spans)
