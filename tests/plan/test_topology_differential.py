"""Default-topology differential: the refactor must be invisible.

The topology refactor's acceptance bar: with the default (paper) topology
and balanced transfers, every execution surface — ``plan.execute``,
inline and pooled ``execute_sharded``, and the serving front end — is
*bit-identical* to the flat pre-topology model, which a bare
``SystemConfig(n_dpus=2545)`` still reproduces exactly.  Rank-aligned
sharding and rank-parallel transfers are opt-in; their behavior is pinned
separately below.
"""

import asyncio

import numpy as np
import pytest

from repro.api import make_method
from repro.obs.metrics import collecting
from repro.obs.tracer import Tracer, tracing
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.pim.topology import PAPER_TOPOLOGY
from repro.plan.dispatch import execute_sharded, shard_ranges, shard_split
from repro.plan.plan import TransferSchedule, compile_plan
from repro.plan.pool import ShardPool

_F32 = np.float32

#: The flat model: exactly what ``SystemConfig()`` meant before the
#: topology existed — 2545 DPUs, no hierarchy.
_FLAT = PIMSystem(SystemConfig(n_dpus=PAPER_TOPOLOGY.n_dpus, topology=None))
#: The refactored default: same count, paper hierarchy underneath.
_TOPO = PIMSystem(SystemConfig())


def _plans(function="sin", method="llut_i"):
    m = make_method(function, method, assume_in_range=False)
    return (compile_plan(_FLAT, m, sample_size=48),
            compile_plan(_TOPO, m, sample_size=48))


def _inputs(n=3000, seed=7):
    return np.random.default_rng(seed).uniform(-4, 4, n).astype(_F32)


def _assert_results_identical(a, b):
    assert a.total_seconds == b.total_seconds
    assert a.kernel_seconds == b.kernel_seconds
    assert a.host_to_pim_seconds == b.host_to_pim_seconds
    assert a.pim_to_host_seconds == b.pim_to_host_seconds
    assert a.n_dpus_used == b.n_dpus_used


class TestDefaultTopologyIsInvisible:
    def test_plan_execute_bit_identical(self):
        flat_plan, topo_plan = _plans()
        xs = _inputs()
        _assert_results_identical(flat_plan.execute(xs),
                                  topo_plan.execute(xs))
        np.testing.assert_array_equal(flat_plan.values(xs),
                                      topo_plan.values(xs))

    def test_sharded_inline_bit_identical(self):
        flat_plan, topo_plan = _plans()
        xs = _inputs()
        a = execute_sharded(flat_plan, xs, n_shards=4, overlap=True)
        b = execute_sharded(topo_plan, xs, n_shards=4, overlap=True)
        assert a.total_seconds == b.total_seconds
        assert a.serial_seconds == b.serial_seconds
        assert a.overlap_saving_seconds == b.overlap_saving_seconds
        for sa, sb in zip(a.shards, b.shards):
            assert sa.start_seconds == sb.start_seconds
            assert sa.finish_seconds == sb.finish_seconds
            _assert_results_identical(sa.result, sb.result)

    def test_sharded_pooled_bit_identical(self):
        flat_plan, topo_plan = _plans("tanh", "dlut_i")
        xs = _inputs(2000, seed=9)
        with ShardPool(2, start_method="fork", timeout=120.0) as pool:
            a = execute_sharded(flat_plan, xs, n_shards=2, pool=pool)
            b = execute_sharded(topo_plan, xs, n_shards=2, pool=pool)
        assert a.total_seconds == b.total_seconds
        for sa, sb in zip(a.shards, b.shards):
            _assert_results_identical(sa.result, sb.result)

    def test_serve_coalescing_bit_identical(self):
        from repro.pim.host import PIMRuntime
        from repro.plan.session import PlanSession
        from repro.serve import Server, normalize_request

        spec = normalize_request("sin", "llut_i")
        inputs = [_inputs(64 + i, seed=20 + i) for i in range(6)]

        def serve_on(system):
            async def main():
                server = Server(PlanSession(PIMRuntime(system=system)))
                results = await server.submit_many(
                    [(spec, xs) for xs in inputs])
                await server.close()
                return results
            return asyncio.run(main())

        for ra, rb in zip(serve_on(_FLAT), serve_on(_TOPO)):
            np.testing.assert_array_equal(ra.values, rb.values)
            assert ra.batch_requests == rb.batch_requests

    def test_plan_keys_differ_only_in_topology_field(self):
        """The two systems are distinct cache entries (different topology
        signatures) even though execution is bit-identical."""
        from repro.plan.cache import key_for

        m = make_method("sin", "llut_i", assume_in_range=False)
        ka = key_for(_FLAT, m)
        kb = key_for(_TOPO, m)
        assert ka != kb
        assert ka.topology == "1x1x1x2545"
        assert kb.topology == PAPER_TOPOLOGY.signature()
        assert ka.table_key == kb.table_key
        assert ka.placement == kb.placement
        assert ka.costs == kb.costs


class TestRankAlignedSharding:
    def test_ranges_follow_rank_boundaries(self):
        _, topo_plan = _plans()
        xs = _inputs()
        tracer = Tracer()
        with collecting() as reg, tracing(tracer):
            r = execute_sharded(topo_plan, xs, n_shards=4,
                                rank_aligned=True)
        spans = PAPER_TOPOLOGY.split_ranks(4)
        assert r.n_elements == len(xs)
        assert reg.value("dispatch.rank_aligned") == 1
        assert reg.value("topology.subranges") >= 4
        dsp = tracer.find("dispatch.run")
        assert dsp is not None
        assert dsp.attrs["rank_aligned"] is True
        shard_spans = [c for c in dsp.children if c.name == "shard"]
        # Each shard is granted exactly its whole-rank span of DPUs...
        assert [s.attrs["n_dpus"] for s in shard_spans] == \
            [hi - lo for lo, hi in spans]
        # ...and carries the channel its first rank hangs off.
        channels = [s.attrs["channel"] for s in shard_spans]
        assert channels == [PAPER_TOPOLOGY.channel_of_range(lo, hi)
                            for lo, hi in spans]

    def test_split_matches_topology_split_ranks(self):
        split = shard_split(3000, PAPER_TOPOLOGY.n_dpus, 4,
                            topology=PAPER_TOPOLOGY)
        assert shard_ranges(split) == PAPER_TOPOLOGY.split_ranks(4)
        assert sum(ne for ne, _ in split) == 3000

    def test_pooled_rank_aligned_matches_inline(self):
        """dpu_range ships to the worker, which rebuilds the same
        subrange system the inline path uses."""
        _, topo_plan = _plans()
        xs = _inputs(2000, seed=13)
        inline = execute_sharded(topo_plan, xs, n_shards=2,
                                 rank_aligned=True)
        with ShardPool(2, start_method="fork", timeout=120.0) as pool:
            pooled = execute_sharded(topo_plan, xs, n_shards=2,
                                     rank_aligned=True, pool=pool)
        assert pooled.total_seconds == inline.total_seconds
        for sa, sb in zip(inline.shards, pooled.shards):
            _assert_results_identical(sa.result, sb.result)

    def test_serve_rank_aligned_values_unchanged(self):
        from repro.serve import ServeConfig, Server, normalize_request
        from repro.serve.keys import spec_method

        spec = normalize_request("sin", "llut_i")
        xs = _inputs(512, seed=31)

        async def main():
            server = Server(config=ServeConfig(shards=4, rank_aligned=True))
            result = await server.submit_spec(spec, xs)
            await server.close()
            return result

        result = asyncio.run(main())
        m = spec_method(spec)
        m.setup()
        np.testing.assert_array_equal(result.values, m.evaluate_vec(xs))


class TestRankParallelTransfers:
    def test_unbalanced_scatter_fans_across_ranks(self):
        """Opt-in rank parallelism divides the unbalanced serialization
        by the touched rank count; balanced transfers are untouched."""
        m = make_method("sin", "llut_i", assume_in_range=False)
        xs = _inputs(2000, seed=17)
        serial = compile_plan(
            _TOPO, m, sample_size=48,
            transfers=TransferSchedule(balanced=False)).execute(xs)
        fanned = compile_plan(
            _TOPO, m, sample_size=48,
            transfers=TransferSchedule(balanced=False,
                                       rank_parallel=True)).execute(xs)
        ranks = PAPER_TOPOLOGY.ranks_in_range(0, serial.n_dpus_used)
        assert ranks > 1
        assert fanned.host_to_pim_seconds == \
            serial.host_to_pim_seconds / ranks
        assert fanned.pim_to_host_seconds == \
            serial.pim_to_host_seconds / ranks
        assert fanned.kernel_seconds == serial.kernel_seconds
        assert fanned.total_seconds < serial.total_seconds

    def test_rank_parallel_noop_on_balanced(self):
        m = make_method("sin", "llut_i", assume_in_range=False)
        xs = _inputs(1500, seed=19)
        base = compile_plan(_TOPO, m, sample_size=48).execute(xs)
        rp = compile_plan(
            _TOPO, m, sample_size=48,
            transfers=TransferSchedule(rank_parallel=True)).execute(xs)
        _assert_results_identical(base, rp)

    def test_single_rank_fallback_matches_flat(self):
        """A bare-n_dpus system has one rank: rank_parallel changes
        nothing, preserving the flat serialization model."""
        m = make_method("sin", "llut_i", assume_in_range=False)
        xs = _inputs(1000, seed=23)
        sys64 = PIMSystem(SystemConfig(n_dpus=64))
        a = compile_plan(
            sys64, m, sample_size=48,
            transfers=TransferSchedule(balanced=False)).execute(xs)
        b = compile_plan(
            sys64, m, sample_size=48,
            transfers=TransferSchedule(balanced=False,
                                       rank_parallel=True)).execute(xs)
        _assert_results_identical(a, b)


# ----------------------------------------------------------------------
# Full matrix, slow-marked (CI topology step): the default topology is
# invisible for *every* supported (method, function) pair, not just the
# representative kernels above.

from repro.core.functions.support import METHOD_SUPPORT  # noqa: E402
from repro.errors import ConfigurationError  # noqa: E402

FULL_MATRIX = [
    (method, function)
    for method, functions in sorted(METHOD_SUPPORT.items())
    for function in sorted(functions)
]


@pytest.mark.slow
@pytest.mark.parametrize("method,function", FULL_MATRIX,
                         ids=[f"{m}-{f}" for m, f in FULL_MATRIX])
def test_default_topology_invisible_full_matrix(method, function):
    try:
        m = make_method(function, method, assume_in_range=False)
    except ConfigurationError as exc:
        pytest.skip(f"unsupported configuration: {exc}")
    flat_plan = compile_plan(_FLAT, m, sample_size=48)
    topo_plan = compile_plan(_TOPO, m, sample_size=48)
    xs = _inputs(400, seed=29)
    _assert_results_identical(flat_plan.execute(xs), topo_plan.execute(xs))
    a = execute_sharded(flat_plan, xs, n_shards=2, overlap=True)
    b = execute_sharded(topo_plan, xs, n_shards=2, overlap=True)
    assert a.total_seconds == b.total_seconds
    for sa, sb in zip(a.shards, b.shards):
        _assert_results_identical(sa.result, sb.result)
