"""Property tests: shard_split partitioning and the pipeline scheduler.

``shard_split`` must be an *exact* partition — every element and every DPU
lands in exactly one shard — and :func:`schedule_pipeline` must respect the
three-resource recurrence (h2p FIFO, kernel serialized only between
conflicting DPU ranges, p2h FIFO) while never exceeding the serial sum.
Stage times are drawn as integers-as-floats so every comparison below is
exact arithmetic, not tolerance checking.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.plan.dispatch import shard_ranges, shard_split
from repro.plan.schedule import StageItem, schedule_pipeline

# ----------------------------------------------------------------------
# shard_split: exact partition

split_args = st.tuples(
    st.integers(min_value=1, max_value=5000),   # n_elements
    st.integers(min_value=1, max_value=2545),   # n_dpus
    st.integers(min_value=1, max_value=64),     # n_shards
).filter(lambda t: t[2] <= t[0] and t[2] <= t[1])


class TestShardSplitProperties:
    @given(split_args)
    @settings(max_examples=200, deadline=None)
    def test_exact_partition(self, args):
        n_elements, n_dpus, n_shards = args
        split = shard_split(n_elements, n_dpus, n_shards)
        assert len(split) == n_shards
        assert sum(ne for ne, _ in split) == n_elements
        assert sum(nd for _, nd in split) == n_dpus
        assert all(ne >= 1 and nd >= 1 for ne, nd in split)

    @given(split_args)
    @settings(max_examples=200, deadline=None)
    def test_remainders_monotone(self, args):
        """Low shards get the remainder: sizes never increase with index."""
        n_elements, n_dpus, n_shards = args
        split = shard_split(n_elements, n_dpus, n_shards)
        elems = [ne for ne, _ in split]
        dpus = [nd for _, nd in split]
        assert elems == sorted(elems, reverse=True)
        assert dpus == sorted(dpus, reverse=True)
        assert max(elems) - min(elems) <= 1
        assert max(dpus) - min(dpus) <= 1

    @given(split_args)
    @settings(max_examples=200, deadline=None)
    def test_ranges_tile_the_system(self, args):
        n_elements, n_dpus, n_shards = args
        split = shard_split(n_elements, n_dpus, n_shards)
        ranges = shard_ranges(split)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n_dpus
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start  # contiguous, disjoint


# ----------------------------------------------------------------------
# schedule_pipeline: recurrence ordering and makespan bound.
#
# Integer stage times (exact in float64) so every bound is checked with
# ==/<= rather than approximate comparisons.

_time = st.integers(min_value=0, max_value=10**6).map(float)


@st.composite
def stage_items(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    items = []
    for i in range(n):
        whole_system = draw(st.booleans())
        if whole_system:
            rng = None
        else:
            start = draw(st.integers(min_value=0, max_value=100))
            width = draw(st.integers(min_value=1, max_value=50))
            rng = (start, start + width)
        items.append(StageItem(
            key=str(i), h2p=draw(_time), launch=draw(_time),
            kernel=draw(_time), p2h=draw(_time), dpu_range=rng,
        ))
    return items


class TestPipelineScheduleProperties:
    @given(stage_items())
    @settings(max_examples=200, deadline=None)
    def test_stage_recurrence(self, items):
        """h2p FIFO, kernel after own scatter and conflicting
        predecessors' kernels, p2h FIFO — each start is the exact max of
        its enabling conditions (no idle slack is invented)."""
        sched = schedule_pipeline(items)
        h2p_done = 0.0
        p2h_done = 0.0
        for i, s in enumerate(sched.items):
            assert s.h2p_start == h2p_done
            assert s.h2p_done == h2p_done + s.item.h2p
            h2p_done = s.h2p_done
            lower = s.h2p_done
            for prev in sched.items[:i]:
                if s.item.conflicts(prev.item):
                    lower = max(lower, prev.kernel_done)
            assert s.kernel_start == lower
            assert s.kernel_done == \
                s.kernel_start + s.item.launch + s.item.kernel
            assert s.p2h_start == max(s.kernel_done, p2h_done)
            assert s.p2h_done == s.p2h_start + s.item.p2h
            p2h_done = s.p2h_done
        assert sched.makespan == p2h_done

    @given(stage_items())
    @settings(max_examples=200, deadline=None)
    def test_makespan_bounded_by_serial_sum(self, items):
        sched = schedule_pipeline(items)
        assert sched.makespan <= sched.serial_seconds
        assert sched.saving_seconds >= 0.0
        # And never faster than any single resource's total demand.
        assert sched.makespan >= sum(it.h2p for it in items)
        assert sched.makespan >= sum(it.p2h for it in items)

    @given(stage_items())
    @settings(max_examples=200, deadline=None)
    def test_whole_system_items_serialize(self, items):
        """Items with dpu_range=None conflict with everything, so their
        kernel stages never overlap any other item's."""
        sched = schedule_pipeline(items)
        for i, s in enumerate(sched.items):
            if s.item.dpu_range is not None:
                continue
            for j, other in enumerate(sched.items):
                if i == j or s.item.launch + s.item.kernel == 0 \
                        or other.item.launch + other.item.kernel == 0:
                    continue
                assert s.kernel_done <= other.kernel_start \
                    or other.kernel_done <= s.kernel_start

    @given(stage_items())
    @settings(max_examples=200, deadline=None)
    def test_disjoint_ranges_collapse_to_double_buffer(self, items):
        """With pairwise-disjoint ranges the schedule equals the PR 4
        double-buffered recurrence bit for bit."""
        disjoint = [
            StageItem(key=it.key, h2p=it.h2p, launch=it.launch,
                      kernel=it.kernel, p2h=it.p2h,
                      dpu_range=(i * 1000, i * 1000 + 1))
            for i, it in enumerate(items)
        ]
        sched = schedule_pipeline(disjoint)
        h2p_done = 0.0
        p2h_done = 0.0
        for it, s in zip(disjoint, sched.items):
            start = h2p_done
            h2p_done = h2p_done + it.h2p
            k_done = h2p_done + it.launch + it.kernel
            p2h_done = max(k_done, p2h_done) + it.p2h
            assert s.start_seconds == start
            assert s.kernel_done == k_done
            assert s.finish_seconds == p2h_done
        assert sched.makespan == p2h_done


class TestPipelineScheduleValidation:
    def test_empty_stream_rejected(self):
        with pytest.raises(SimulationError):
            schedule_pipeline([])

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            schedule_pipeline([StageItem(key="x", h2p=-1.0, launch=0.0,
                                         kernel=0.0, p2h=0.0)])

    def test_conflict_symmetry(self):
        a = StageItem(key="a", h2p=0, launch=0, kernel=0, p2h=0,
                      dpu_range=(0, 10))
        b = StageItem(key="b", h2p=0, launch=0, kernel=0, p2h=0,
                      dpu_range=(9, 12))
        c = StageItem(key="c", h2p=0, launch=0, kernel=0, p2h=0,
                      dpu_range=(10, 12))
        whole = StageItem(key="w", h2p=0, launch=0, kernel=0, p2h=0)
        assert a.conflicts(b) and b.conflicts(a)
        assert not a.conflicts(c) and not c.conflicts(a)  # half-open
        assert whole.conflicts(a) and a.conflicts(whole)
