"""Tests for ExecutionPlan compilation and execution."""

import numpy as np
import pytest

from repro.api import make_method
from repro.errors import SimulationError
from repro.obs.tracer import Tracer, tracing
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.plan import TransferSchedule, compile_plan

_F32 = np.float32


def identity_kernel(ctx, x):
    return ctx.fadd(x, 0.0)


@pytest.fixture
def system():
    return PIMSystem(SystemConfig(n_dpus=64))


@pytest.fixture
def method():
    return make_method("sin", "llut_i", density_log2=8,
                       assume_in_range=False)


class TestCompile:
    def test_compile_builds_tables_once(self, system, method):
        assert not method._ready
        plan = compile_plan(system, method)
        assert method._ready
        assert plan.method is method
        assert plan.table_bytes == method.table_bytes()

    def test_compile_accepts_prebuilt_method(self, system, method):
        method.setup()
        plan = compile_plan(system, method)
        assert plan.method is method

    def test_compile_accepts_raw_kernel(self, system):
        plan = compile_plan(system, identity_kernel)
        assert plan.method is None
        assert plan.table_bytes == 0
        r = plan.execute(np.ones(100, dtype=_F32))
        assert r.total_seconds > 0

    def test_compile_bound_evaluate_detects_method(self, system, method):
        method.setup()
        plan = compile_plan(system, method.evaluate)
        assert plan.method is method

    def test_compile_emits_spans(self, system, method):
        tracer = Tracer()
        with tracing(tracer):
            compile_plan(system, method)
        compile_span = tracer.find("plan.compile")
        assert compile_span is not None
        build = compile_span.find("plan.table_build")
        assert build is not None
        assert build.attrs["table_bytes"] == method.table_bytes()


class TestExecute:
    def test_execute_matches_run(self, system, method, rng):
        xs = rng.uniform(-4, 4, 3000).astype(_F32)
        plan = compile_plan(system, method)
        a = plan.execute(xs)
        b = system.run(method.evaluate, xs)
        assert a.kernel_seconds == b.kernel_seconds
        assert a.total_seconds == b.total_seconds
        assert a.per_dpu.cycles == b.per_dpu.cycles

    def test_repeated_execute_uses_tally_cache(self, system, method, rng):
        xs = rng.uniform(-4, 4, 3000).astype(_F32)
        plan = compile_plan(system, method)
        # Explicit rng bypasses the launch memo, so the second call really
        # re-simulates — hitting the path-tally cache, not the memo.
        first = plan.execute(xs, rng=np.random.default_rng(1))
        assert len(plan.tally_cache) > 0
        cached_paths = len(plan.tally_cache)
        second = plan.execute(xs, rng=np.random.default_rng(1))
        # Bit-identical results, no new paths traced.
        assert second is not first
        assert second.total_seconds == first.total_seconds
        assert second.per_dpu.cycles == first.per_dpu.cycles
        assert len(plan.tally_cache) == cached_paths
        assert plan.executions == 2

    def test_launch_memo_caches_deterministic_launches(self, system,
                                                       method, rng):
        from repro.obs.metrics import collecting

        xs = rng.uniform(-4, 4, 3000).astype(_F32)
        plan = compile_plan(system, method)
        with collecting() as reg:
            first = plan.execute(xs)
            second = plan.execute(xs)
        # Same content, no caller rng: the whole launch is memoized.
        assert second is first
        assert plan.executions == 2
        assert reg.value("plan.launch_memo.misses") == 1
        assert reg.value("plan.launch_memo.hits") == 1
        # Different content or per-launch knobs miss.
        assert plan.execute(xs + 1.0) is not first
        assert plan.execute(xs, imbalance=0.5) is not first

    def test_batch_false_skips_tally_cache(self, system, method, rng):
        xs = rng.uniform(-4, 4, 500).astype(_F32)
        plan = compile_plan(system, method)
        r = plan.execute(xs, batch=False)
        assert len(plan.tally_cache) == 0
        assert r.total_seconds == system.run(method.evaluate, xs,
                                             batch=False).total_seconds

    def test_per_launch_imbalance_override(self, system, method, rng):
        xs = rng.uniform(-4, 4, 1000).astype(_F32)
        plan = compile_plan(system, method, imbalance=0.0)
        base = plan.execute(xs)
        slow = plan.execute(xs, imbalance=0.5)
        assert slow.kernel_seconds == pytest.approx(
            base.kernel_seconds * 1.5, rel=1e-12)
        assert slow.imbalance == 0.5 and base.imbalance == 0.0
        with pytest.raises(SimulationError):
            plan.execute(xs, imbalance=-0.1)

    def test_empty_input_rejected(self, system, method):
        plan = compile_plan(system, method)
        with pytest.raises(SimulationError):
            plan.execute(np.empty(0, dtype=_F32))

    def test_result_records_launch_configuration(self, system, method, rng):
        xs = rng.uniform(-4, 4, 200).astype(_F32)
        sched = TransferSchedule(include_transfers=False, balanced=False)
        plan = compile_plan(system, method, transfers=sched)
        r = plan.execute(xs, virtual_n=10_000)
        assert r.virtual_n == 10_000 and r.n_elements == 10_000
        assert r.include_transfers is False
        assert r.balanced_transfers is False
        assert r.imbalance == 0.0

    def test_values_bit_exact(self, system, method, rng):
        xs = rng.uniform(-4, 4, 256).astype(_F32)
        plan = compile_plan(system, method)
        np.testing.assert_array_equal(plan.values(xs),
                                      method.evaluate_vec(xs))

    def test_values_rejected_for_raw_kernel(self, system):
        plan = compile_plan(system, identity_kernel)
        with pytest.raises(SimulationError):
            plan.values(np.ones(4, dtype=_F32))


class TestTransferSchedule:
    def test_disabled_transfers_are_free(self):
        cfg = SystemConfig()
        sched = TransferSchedule(include_transfers=False)
        assert sched.scatter_seconds(cfg, 1000) == 0.0
        assert sched.gather_seconds(cfg, 1000) == 0.0

    def test_unbalanced_serializes(self):
        cfg = SystemConfig()
        fast = TransferSchedule()
        slow = TransferSchedule(balanced=False)
        assert slow.scatter_seconds(cfg, 1000) > fast.scatter_seconds(cfg, 1000)


class TestForSystem:
    def test_clone_shares_tally_cache(self, system, method, rng):
        xs = rng.uniform(-4, 4, 500).astype(_F32)
        plan = compile_plan(system, method)
        plan.execute(xs)
        other = plan.for_system(PIMSystem(SystemConfig(n_dpus=8)))
        assert other.tally_cache is plan.tally_cache
        assert other.memo is plan.memo
        r = other.execute(xs)
        # Fewer cores -> more elements per core -> more kernel time.
        assert r.kernel_seconds > plan.execute(xs).kernel_seconds


class TestDescribe:
    def test_describe_mentions_key_facts(self, system, method):
        plan = compile_plan(system, method)
        text = plan.describe(n_elements=1000, shards=4)
        assert "llut_i" in text
        assert "MRAM" in text
        assert "shard split" in text

    def test_describe_raw_kernel(self, system):
        plan = compile_plan(system, identity_kernel)
        assert "raw callable" in plan.describe()
