"""Tests for PlanSession: a multi-kernel launch stream over one runtime."""

import numpy as np
import pytest

from repro.api import make_method
from repro.errors import ConfigurationError
from repro.obs.metrics import collecting
from repro.plan.dispatch import ShardedRunResult
from repro.plan.session import PlanSession

_F32 = np.float32


@pytest.fixture
def session():
    s = PlanSession(sample_size=16)
    s.install(make_method("sin", "llut_i", density_log2=8,
                          assume_in_range=False))
    s.install(make_method("exp", "mlut_i", size=1024,
                          assume_in_range=False))
    return s


@pytest.fixture
def xs(rng):
    return rng.uniform(-4, 4, 1000).astype(_F32)


class TestLaunchStream:
    def test_interleaved_functions(self, session, xs):
        assert sorted(session.functions) == ["llut_i:sin", "mlut_i:exp"]
        a = session.launch("llut_i:sin", xs)
        b = session.launch("mlut_i:exp", np.abs(xs))
        c = session.launch("llut_i:sin", xs)
        assert a.total_seconds > 0 and b.total_seconds > 0
        assert c.total_seconds == a.total_seconds  # warm, bit-identical
        assert len(session.launches) == 3

    def test_plans_warm_after_first_launch(self, session, xs):
        session.launch("llut_i:sin", xs)
        assert session.plans.misses == 1
        session.launch("llut_i:sin", xs)
        session.launch("llut_i:sin", xs[:100])
        assert session.plans.misses == 1
        assert session.plans.hits == 2

    def test_unknown_function_rejected(self, session, xs):
        with pytest.raises(ConfigurationError):
            session.launch("llut_i:cos", xs)

    def test_sharded_launch(self, session, xs):
        r = session.launch("llut_i:sin", xs, shards=4, overlap=True)
        assert isinstance(r, ShardedRunResult)
        assert r.n_shards == 4 and r.overlap
        assert session.launches[-1].shards == 4

    def test_total_simulated_seconds(self, session, xs):
        a = session.launch("llut_i:sin", xs)
        b = session.launch("mlut_i:exp", np.abs(xs))
        assert session.total_simulated_seconds == pytest.approx(
            a.total_seconds + b.total_seconds, rel=1e-15)


class TestReporting:
    def test_summary(self, session, xs):
        session.launch("llut_i:sin", xs)
        session.launch("llut_i:sin", xs)
        session.launch("mlut_i:exp", np.abs(xs))
        text = session.summary()
        assert "3 launches" in text
        assert "llut_i:sin" in text and "mlut_i:exp" in text
        assert "1/3 plan-cache hits" in text

    def test_metrics(self, session, xs):
        with collecting() as reg:
            session.launch("llut_i:sin", xs)
            session.launch("llut_i:sin", xs)
        assert reg.value("session.launches") == 2
        assert reg.value("session.elements") == 2 * len(xs)
        assert reg.value("plan.compiles") == 1
