"""Tests for the PlanCache: keys, LRU eviction, table pooling."""

import pytest

from repro.api import make_method
from repro.errors import ConfigurationError
from repro.isa.opcosts import UPMEM_COSTS, OpCosts
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.cache import PlanCache, plan_signature, table_signature
from repro.plan.plan import TransferSchedule


def _method(method="llut_i", density_log2=8, **kw):
    return make_method("sin", method, density_log2=density_log2,
                       assume_in_range=False, **kw)


@pytest.fixture
def system():
    return PIMSystem(SystemConfig(n_dpus=32))


class TestSignatures:
    def test_same_geometry_same_table_signature(self):
        assert table_signature(_method()) == table_signature(_method())

    def test_placement_excluded_from_table_signature(self):
        assert (table_signature(_method(placement="wram"))
                == table_signature(_method(placement="mram")))

    def test_placement_included_in_plan_signature(self):
        assert (plan_signature(_method(placement="wram"))
                != plan_signature(_method(placement="mram")))

    def test_density_distinguishes(self):
        assert (table_signature(_method(density_log2=8))
                != table_signature(_method(density_log2=10)))

    def test_cordic_iterations_distinguish(self):
        # cache_signature alone misses constructor knobs like iterations;
        # the plan signatures must not collide on them.
        a = make_method("sin", "cordic", iterations=8)
        b = make_method("sin", "cordic", iterations=16)
        assert table_signature(a) != table_signature(b)

    def test_assume_in_range_distinguishes(self):
        a = make_method("sin", "llut_i", density_log2=8,
                        assume_in_range=True)
        b = make_method("sin", "llut_i", density_log2=8,
                        assume_in_range=False)
        assert table_signature(a) != table_signature(b)

    def test_op_costs_distinguish(self):
        cheap = OpCosts()
        costly = cheap.replace(fp_div=cheap.fp_div + 10)
        a = _method(costs=cheap)
        b = _method(costs=costly)
        assert table_signature(a) != table_signature(b)

    def test_composite_sub_method_knobs_distinguish(self):
        a = make_method("tanh", "dllut_i", mant_bits=8)
        b = make_method("tanh", "dllut_i", mant_bits=10)
        assert table_signature(a) != table_signature(b)


class TestPlanCache:
    def test_hit_returns_same_plan(self, system):
        cache = PlanCache()
        p1 = cache.plan(system, _method())
        p2 = cache.plan(system, _method())
        assert p1 is p2
        assert cache.hits == 1 and cache.misses == 1

    def test_cross_config_keys_do_not_collide(self, system):
        """Every launch-relevant knob must produce a distinct plan."""
        cache = PlanCache()
        base = cache.plan(system, _method())
        variants = [
            cache.plan(system, _method(density_log2=10)),
            cache.plan(system, _method(placement="wram")),
            cache.plan(PIMSystem(SystemConfig(n_dpus=8)), _method()),
            cache.plan(system, _method(), tasklets=4),
            cache.plan(system, _method(), sample_size=16),
            cache.plan(system, _method(),
                       transfers=TransferSchedule(include_transfers=False)),
            cache.plan(system, _method(), imbalance=0.5),
            cache.plan(system, _method(costs=OpCosts().replace(fp_div=999))),
        ]
        plans = [base] + variants
        assert len({id(p) for p in plans}) == len(plans)
        assert cache.hits == 0 and cache.misses == len(plans)

    def test_table_pool_shares_builds_across_placements(self, system):
        cache = PlanCache()
        p_mram = cache.plan(system, _method(placement="mram"))
        p_wram = cache.plan(system, _method(placement="wram"))
        assert p_mram is not p_wram
        assert p_mram.method is p_wram.method  # one built table image
        assert p_mram.memo is p_wram.memo
        assert cache.table_misses == 1 and cache.table_hits == 1

    def test_pool_hit_skips_table_build(self, system):
        cache = PlanCache()
        cache.plan(system, _method(placement="mram"))
        fresh = _method(placement="wram")
        cache.plan(system, fresh)
        assert not fresh._ready  # pooled build reused, fresh never set up

    def test_plans_rebind_placement_before_execute(self, system, rng):
        import numpy as np
        cache = PlanCache()
        xs = rng.uniform(-4, 4, 400).astype(np.float32)
        p_mram = cache.plan(system, _method(placement="mram"))
        p_wram = cache.plan(system, _method(placement="wram"))
        r_wram = p_wram.execute(xs)
        r_mram = p_mram.execute(xs)  # shared method last bound to wram
        assert p_mram.method.placement == "mram"
        # WRAM loads are cheaper than MRAM DMA.
        assert r_wram.kernel_seconds < r_mram.kernel_seconds
        # Numbers agree with uncached runs of dedicated methods.
        direct = system.run(_method(placement="mram").setup().evaluate, xs)
        assert r_mram.kernel_seconds == direct.kernel_seconds

    def test_lru_eviction(self, system):
        cache = PlanCache(maxsize=2)
        p1 = cache.plan(system, _method(density_log2=6))
        cache.plan(system, _method(density_log2=7))
        cache.plan(system, _method(density_log2=8))  # evicts p1
        assert len(cache) == 2
        assert cache.evictions == 1
        p1_again = cache.plan(system, _method(density_log2=6))
        assert p1_again is not p1
        assert cache.misses == 4

    def test_lru_recency_refresh(self, system):
        cache = PlanCache(maxsize=2)
        p1 = cache.plan(system, _method(density_log2=6))
        cache.plan(system, _method(density_log2=7))
        assert cache.plan(system, _method(density_log2=6)) is p1  # touch p1
        cache.plan(system, _method(density_log2=8))  # evicts 7, not p1
        assert cache.plan(system, _method(density_log2=6)) is p1

    def test_method_pool_eviction(self, system):
        cache = PlanCache(maxsize=8, method_pool_size=1)
        cache.plan(system, _method(density_log2=6))
        cache.plan(system, _method(density_log2=7))
        assert cache.table_evictions == 1
        assert cache.stats()["methods"] == 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanCache(maxsize=0)
        with pytest.raises(ConfigurationError):
            PlanCache(maxsize=4, method_pool_size=0)

    def test_clear(self, system):
        cache = PlanCache()
        cache.plan(system, _method())
        cache.clear()
        assert len(cache) == 0 and cache.stats()["methods"] == 0


class TestPlanCacheEdges:
    def test_maxsize_one_eviction_order(self, system):
        # A one-slot cache must evict on every alternation but still hit
        # on immediate re-use.
        cache = PlanCache(maxsize=1)
        a = cache.plan(system, _method(density_log2=6))
        assert cache.plan(system, _method(density_log2=6)) is a
        b = cache.plan(system, _method(density_log2=7))  # evicts a
        assert len(cache) == 1
        assert cache.evictions == 1
        assert cache.plan(system, _method(density_log2=7)) is b
        a2 = cache.plan(system, _method(density_log2=6))  # evicts b
        assert a2 is not a
        assert cache.evictions == 2
        assert cache.hits == 2 and cache.misses == 3

    def test_stats_after_clear_resets_sizes_keeps_counters(self, system):
        cache = PlanCache()
        cache.plan(system, _method())
        cache.plan(system, _method())  # hit
        before = cache.stats()
        assert before["plans"] == 1 and before["methods"] == 1
        cache.clear()
        after = cache.stats()
        assert after["plans"] == 0 and after["methods"] == 0
        # Clearing drops entries, not the lifetime counters.
        assert after["hits"] == before["hits"] == 1
        assert after["misses"] == before["misses"] == 1
        # A post-clear lookup rebuilds: a fresh miss on both tiers.
        cache.plan(system, _method())
        assert cache.misses == 2 and cache.table_misses == 2

    def test_pool_sharing_survives_placement_rebinding(self, system, rng):
        import numpy as np
        cache = PlanCache()
        xs = rng.uniform(-4, 4, 400).astype(np.float32)
        p_mram = cache.plan(system, _method(placement="mram"))
        p_wram = cache.plan(system, _method(placement="wram"))
        # Execute alternately so the shared method rebinds each time.
        r_wram1 = p_wram.execute(xs)
        r_mram1 = p_mram.execute(xs)
        r_wram2 = p_wram.execute(xs)
        assert p_wram.method.placement == "wram"
        assert r_wram2.kernel_seconds == r_wram1.kernel_seconds
        # Rebinding must not fork the pooled build or miss the cache.
        assert cache.plan(system, _method(placement="mram")) is p_mram
        assert cache.plan(system, _method(placement="wram")) is p_wram
        assert p_mram.method is p_wram.method
        assert cache.table_misses == 1 and cache.table_hits == 1
        # And the rebound numbers still match dedicated uncached methods.
        direct = system.run(_method(placement="mram").setup().evaluate, xs)
        assert r_mram1.kernel_seconds == direct.kernel_seconds
