"""Differential harness: ``PIMSystem.run`` vs compiled plan execution.

The tentpole guarantee of :mod:`repro.plan` is that the plan/execute split
is pure code motion: for every supported (function, method) pair,
``compile_plan(system, m).execute(xs)`` produces a result bit-identical to
``system.run(m.evaluate, xs)`` — same seconds, same cycles, same slot
counts.  No approx anywhere; every assertion is ``==``.

A fast subset runs in tier-1; the full ``METHOD_SUPPORT`` matrix is
``slow``-marked and runs in CI's differential step.
"""

import numpy as np
import pytest

from repro.analysis.sweep import default_inputs
from repro.api import make_method
from repro.core.functions.registry import get_function
from repro.core.functions.support import METHOD_SUPPORT
from repro.errors import ConfigurationError
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.plan import compile_plan

_F32 = np.float32

_SYSTEM = PIMSystem(SystemConfig(n_dpus=64))

# Built methods and compiled plans are reused between the fast and slow
# suites; tables are input-independent, so caching builds is safe.
_CACHE = {}


def _inputs_for(function: str, in_range: bool, n: int) -> np.ndarray:
    spec = get_function(function)
    lo, hi = spec.natural_range if in_range else spec.bench_domain
    xs = default_inputs(function, n=n, seed=11, in_natural_range=in_range)
    # Domain edges only: run() itself rejects non-finite inputs for some
    # methods, and this harness compares plan vs run, not numeric hygiene
    # (the batch differential suite covers adversarial classification).
    edges = [lo, hi, float(np.nextafter(_F32(hi), _F32(lo))),
             (lo + hi) / 2.0]
    return np.concatenate([xs, np.array(edges, dtype=_F32)])


def _get(function: str, method: str, assume_in_range: bool):
    key = (function, method, assume_in_range)
    if key not in _CACHE:
        m = make_method(function, method, assume_in_range=assume_in_range)
        _CACHE[key] = (m, compile_plan(_SYSTEM, m, sample_size=48))
    return _CACHE[key]


def _assert_plan_matches_run(function: str, method_name: str,
                             in_range: bool, n: int) -> None:
    m, plan = _get(function, method_name, in_range)
    xs = _inputs_for(function, in_range, n)

    # Identical seeded generators: both sides sample the same elements.
    a = plan.execute(xs, rng=np.random.default_rng(5))
    b = _SYSTEM.run(m.evaluate, xs, sample_size=48,
                    rng=np.random.default_rng(5))

    assert a.n_elements == b.n_elements == xs.size
    assert a.n_dpus_used == b.n_dpus_used
    assert a.kernel_seconds == b.kernel_seconds
    assert a.host_to_pim_seconds == b.host_to_pim_seconds
    assert a.pim_to_host_seconds == b.pim_to_host_seconds
    assert a.launch_seconds == b.launch_seconds
    assert a.total_seconds == b.total_seconds
    assert a.per_dpu.cycles == b.per_dpu.cycles
    assert a.per_dpu.total_tally.slots == b.per_dpu.total_tally.slots
    assert a.per_dpu.total_tally.counts == b.per_dpu.total_tally.counts
    np.testing.assert_array_equal(a.per_dpu.sample_outputs,
                                  b.per_dpu.sample_outputs)


# ----------------------------------------------------------------------
# Fast tier-1 subset: one pair per method family.

FAST_PAIRS = [
    ("sin", "mlut_i"),
    ("sin", "llut_i"),
    ("sin", "llut_i_fx"),
    ("exp", "slut_i"),
    ("tanh", "dllut_i"),
    ("sin", "cordic"),
    ("tanh", "cordic_lut"),
    ("cos", "poly"),
]


@pytest.mark.parametrize("in_range", [True, False],
                         ids=["natural", "full_domain"])
@pytest.mark.parametrize("function,method", FAST_PAIRS,
                         ids=[f"{m}-{f}" for f, m in FAST_PAIRS])
def test_plan_vs_run_fast(function, method, in_range):
    _assert_plan_matches_run(function, method, in_range, n=120)


# ----------------------------------------------------------------------
# Full matrix: every (method, function) in METHOD_SUPPORT, both range
# assumptions.  Slow-marked; CI runs it in the differential step.

FULL_MATRIX = [
    (method, function)
    for method, functions in sorted(METHOD_SUPPORT.items())
    for function in sorted(functions)
]


@pytest.mark.slow
@pytest.mark.parametrize("in_range", [True, False],
                         ids=["natural", "full_domain"])
@pytest.mark.parametrize("method,function", FULL_MATRIX,
                         ids=[f"{m}-{f}" for m, f in FULL_MATRIX])
def test_plan_vs_run_full_matrix(method, function, in_range):
    try:
        _get(function, method, in_range)
    except ConfigurationError as exc:
        pytest.skip(f"unsupported configuration: {exc}")
    _assert_plan_matches_run(function, method, in_range, n=72)
