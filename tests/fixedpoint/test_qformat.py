"""Tests for Q-format descriptors and conversions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fixedpoint import Q1_30, Q3_28, Q15_16, QFormat


class TestLayout:
    def test_s3_28_layout(self):
        assert Q3_28.word_bits == 32
        assert Q3_28.scale == 1 << 28
        assert Q3_28.resolution == 2.0 ** -28

    def test_s3_28_range_covers_two_pi(self):
        # The paper chose 3 integer bits exactly to fit angles up to 2*pi.
        assert Q3_28.max_value > 2 * np.pi
        assert Q3_28.min_value < -2 * np.pi

    def test_max_min_raw(self):
        assert Q3_28.max_raw == 2**31 - 1
        assert Q3_28.min_raw == -(2**31)

    def test_word_too_wide_rejected(self):
        with pytest.raises(ConfigurationError):
            QFormat(int_bits=10, frac_bits=28)

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            QFormat(int_bits=-1, frac_bits=4)

    def test_str(self):
        assert str(Q3_28) == "s3.28"
        assert str(Q15_16) == "s15.16"


class TestConversions:
    def test_from_float_exact_grid(self):
        assert Q3_28.from_float(1.0) == 1 << 28
        assert Q3_28.from_float(-0.5) == -(1 << 27)

    def test_roundtrip_error_bounded(self, rng):
        xs = rng.uniform(-7.9, 7.9, 1000)
        raw = Q3_28.from_float(xs)
        back = Q3_28.to_float(raw)
        assert np.max(np.abs(back - xs)) <= Q3_28.resolution / 2

    def test_saturation(self):
        assert Q3_28.from_float(100.0) == Q3_28.max_raw
        assert Q3_28.from_float(-100.0) == Q3_28.min_raw

    def test_wrap_mode(self):
        wrapped = Q3_28.from_float(8.0, saturate=False)
        assert wrapped == Q3_28.min_raw  # 8.0 wraps to -8.0 in s3.28

    def test_extreme_values_do_not_overflow(self):
        assert Q3_28.from_float(1e300) == Q3_28.max_raw
        assert Q3_28.from_float(-1e300) == Q3_28.min_raw

    @given(st.floats(min_value=-7.9, max_value=7.9))
    def test_roundtrip_property(self, x):
        raw = Q3_28.from_float(x)
        assert abs(Q3_28.to_float(raw) - x) <= Q3_28.resolution / 2

    def test_vector_conversion(self, rng):
        xs = rng.uniform(-1, 1, 64)
        raw = Q1_30.from_float(xs)
        assert isinstance(raw, np.ndarray)
        np.testing.assert_allclose(Q1_30.to_float(raw), xs, atol=2.0**-30)


class TestWrapSaturate:
    @given(st.integers(min_value=-2**40, max_value=2**40))
    def test_wrap_lands_in_range(self, raw):
        w = Q3_28.wrap(raw)
        assert Q3_28.min_raw <= w <= Q3_28.max_raw

    @given(st.integers(min_value=Q3_28.min_raw, max_value=Q3_28.max_raw))
    def test_wrap_identity_in_range(self, raw):
        assert Q3_28.wrap(raw) == raw

    def test_wrap_twos_complement(self):
        assert Q3_28.wrap(Q3_28.max_raw + 1) == Q3_28.min_raw

    def test_saturate(self):
        assert Q3_28.saturate(2**40) == Q3_28.max_raw
        assert Q3_28.saturate(-(2**40)) == Q3_28.min_raw

    def test_representable(self):
        assert Q3_28.representable(7.9)
        assert not Q3_28.representable(8.1)
