"""Tests for the FxArray fixed-point array type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fixedpoint import Q3_28, Q15_16, fx_add, fx_div, fx_mul, fx_sub
from repro.fixedpoint.array import FxArray
from repro.isa.counter import CycleCounter

vals = st.lists(st.floats(min_value=-3.0, max_value=3.0),
                min_size=1, max_size=8)


class TestConstruction:
    def test_from_float_roundtrip(self):
        a = FxArray.from_float([1.5, -0.25, 0.0])
        np.testing.assert_array_equal(a.to_float(), [1.5, -0.25, 0.0])

    def test_saturation_on_construction(self):
        a = FxArray.from_float([100.0, -100.0])
        assert a.to_float()[0] == pytest.approx(Q3_28.max_value)
        assert a.to_float()[1] == pytest.approx(Q3_28.min_value)

    def test_repr_and_len(self):
        a = FxArray.from_float([1.0, 2.0])
        assert len(a) == 2
        assert "s3.28" in repr(a)

    def test_custom_format(self):
        a = FxArray.from_float([1000.0], fmt=Q15_16)
        assert a.to_float()[0] == 1000.0


class TestArithmetic:
    def test_add_sub(self):
        a = FxArray.from_float([1.5, 2.0])
        b = FxArray.from_float([0.25, -1.0])
        np.testing.assert_array_equal((a + b).to_float(), [1.75, 1.0])
        np.testing.assert_array_equal((a - b).to_float(), [1.25, 3.0])

    def test_scalar_operands(self):
        a = FxArray.from_float([1.0, 2.0])
        np.testing.assert_array_equal((a + 0.5).to_float(), [1.5, 2.5])
        np.testing.assert_array_equal((2.0 * a).to_float(), [2.0, 4.0])
        np.testing.assert_array_equal((4.0 - a).to_float(), [3.0, 2.0])

    def test_mul(self):
        a = FxArray.from_float([1.5])
        b = FxArray.from_float([2.0])
        assert (a * b).to_float()[0] == pytest.approx(3.0, abs=1e-8)

    def test_div(self):
        a = FxArray.from_float([3.0])
        assert (a / 2.0).to_float()[0] == pytest.approx(1.5, abs=1e-8)

    def test_neg_abs(self):
        a = FxArray.from_float([-1.5, 2.0])
        np.testing.assert_array_equal((-a).to_float(), [1.5, -2.0])
        np.testing.assert_array_equal(a.abs().to_float(), [1.5, 2.0])

    def test_shifts(self):
        a = FxArray.from_float([1.0])
        assert (a << 2).to_float()[0] == 4.0
        assert (a >> 1).to_float()[0] == 0.5

    def test_wrapping_matches_format(self):
        a = FxArray.from_float([7.0])
        b = FxArray.from_float([2.0])
        # 9.0 wraps into s3.28's [-8, 8).
        assert (a + b).to_float()[0] == pytest.approx(9.0 - 16.0)

    def test_format_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            FxArray.from_float([1.0]) + FxArray.from_float([1.0], fmt=Q15_16)


class TestAgainstCountedOps:
    """FxArray must agree bit-for-bit with the counted scalar ops."""

    @settings(max_examples=30, deadline=None)
    @given(xs=vals, ys=vals)
    def test_add_sub_mul_match(self, xs, ys):
        n = min(len(xs), len(ys))
        a = FxArray.from_float(xs[:n])
        b = FxArray.from_float(ys[:n])
        ctx = CycleCounter()
        for i in range(n):
            ra, rb = int(a.raw[i]), int(b.raw[i])
            assert (a + b).raw[i] == fx_add(ctx, Q3_28, ra, rb)
            assert (a - b).raw[i] == fx_sub(ctx, Q3_28, ra, rb)
            assert (a * b).raw[i] == fx_mul(ctx, Q3_28, ra, rb)

    @settings(max_examples=20, deadline=None)
    @given(xs=st.lists(st.floats(min_value=0.1, max_value=3.0),
                       min_size=1, max_size=6),
           ys=st.lists(st.floats(min_value=0.1, max_value=3.0),
                       min_size=1, max_size=6))
    def test_div_matches(self, xs, ys):
        n = min(len(xs), len(ys))
        a = FxArray.from_float(xs[:n])
        b = FxArray.from_float(ys[:n])
        ctx = CycleCounter()
        for i in range(n):
            assert (a / b).raw[i] == fx_div(ctx, Q3_28, int(a.raw[i]),
                                            int(b.raw[i]))


class TestComparisonsAndHelpers:
    def test_comparisons(self):
        a = FxArray.from_float([1.0, 3.0])
        b = FxArray.from_float([2.0, 2.0])
        np.testing.assert_array_equal(a < b, [True, False])
        np.testing.assert_array_equal(a >= b, [False, True])
        np.testing.assert_array_equal(a == FxArray.from_float([1.0, 3.0]),
                                      [True, True])

    def test_clip(self):
        a = FxArray.from_float([-5.0, 0.5, 5.0])
        np.testing.assert_array_equal(
            a.clip(-1.0, 1.0).to_float(), [-1.0, 0.5, 1.0]
        )

    def test_getitem(self):
        a = FxArray.from_float([1.0, 2.0, 3.0])
        assert a[1].to_float()[0] == 2.0

    def test_to_float32(self):
        a = FxArray.from_float([1.0 / 3.0])
        assert a.to_float32().dtype == np.float32


class TestWrapBoundaries:
    """Regression: operators wrap like a 32-bit register at the s3.28 limits.

    Before the explicit ``fmt.wrap`` in every operator, intermediates lived
    in int64 and only the constructor reduced them — add/sub/mul/div results
    one lsb past the word width diverged from the counted scalar ops.
    """

    def _raw(self, *words):
        return FxArray(np.array(words, dtype=np.int64), Q3_28)

    def test_add_one_lsb_past_max_wraps_to_min(self):
        ctx = CycleCounter()
        top = self._raw(Q3_28.max_raw) + self._raw(1)
        assert int(top.raw[0]) == Q3_28.min_raw
        assert int(top.raw[0]) == fx_add(ctx, Q3_28, Q3_28.max_raw, 1)

    def test_sub_one_lsb_past_min_wraps_to_max(self):
        ctx = CycleCounter()
        bot = self._raw(Q3_28.min_raw) - self._raw(1)
        assert int(bot.raw[0]) == Q3_28.max_raw
        assert int(bot.raw[0]) == fx_sub(ctx, Q3_28, Q3_28.min_raw, 1)

    def test_neg_min_raw_is_min_raw(self):
        # Two's complement has no positive counterpart for min_raw.
        assert int((-self._raw(Q3_28.min_raw)).raw[0]) == Q3_28.min_raw

    def test_mul_overflow_wraps_like_counted_op(self):
        ctx = CycleCounter()
        a, b = Q3_28.from_float(4.0 - Q3_28.resolution), Q3_28.from_float(4.0 - Q3_28.resolution)
        got = self._raw(a) * self._raw(b)
        assert int(got.raw[0]) == fx_mul(ctx, Q3_28, a, b)

    def test_div_overflow_wraps_like_counted_op(self):
        # (8.0 - lsb) / 0.5 = ~16.0 overflows s3.28's [-8, 8) range and
        # must wrap negative, exactly as the widened counted divide does.
        ctx = CycleCounter()
        a = Q3_28.max_raw
        b = Q3_28.from_float(0.5)
        got = self._raw(a) / self._raw(b)
        assert int(got.raw[0]) == fx_div(ctx, Q3_28, a, b)
        assert Q3_28.to_float(int(got.raw[0])) < 0

    def test_lshift_wraps(self):
        got = self._raw(Q3_28.max_raw) << 1
        assert int(got.raw[0]) == Q3_28.wrap(Q3_28.max_raw << 1)
        assert Q3_28.min_raw <= int(got.raw[0]) <= Q3_28.max_raw

    def test_div_by_zero_raises_like_scalar(self):
        with pytest.raises(ZeroDivisionError):
            self._raw(1) / self._raw(0)
