"""Tests for counted and vectorized fixed-point arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint import (
    Q3_28,
    fx_add,
    fx_add_vec,
    fx_div,
    fx_frac,
    fx_mul,
    fx_mul_vec,
    fx_neg,
    fx_round_index,
    fx_shift,
    fx_sub,
    fx_sub_vec,
)
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import UPMEM_COSTS

FMT = Q3_28

raw_values = st.integers(min_value=-FMT.scale * 7, max_value=FMT.scale * 7)


def _fx(x: float) -> int:
    return FMT.from_float(x)


class TestArithmetic:
    def test_add(self, ctx):
        out = fx_add(ctx, FMT, _fx(1.5), _fx(2.25))
        assert FMT.to_float(out) == 3.75

    def test_add_cost_is_native(self, ctx):
        fx_add(ctx, FMT, 1, 2)
        assert ctx.slots == UPMEM_COSTS.int_alu

    def test_sub(self, ctx):
        out = fx_sub(ctx, FMT, _fx(1.0), _fx(2.5))
        assert FMT.to_float(out) == -1.5

    def test_neg(self, ctx):
        assert fx_neg(ctx, FMT, _fx(1.25)) == _fx(-1.25)

    def test_mul(self, ctx):
        out = fx_mul(ctx, FMT, _fx(1.5), _fx(2.0))
        assert FMT.to_float(out) == pytest.approx(3.0, abs=FMT.resolution)

    def test_mul_charges_wide_multiply(self, ctx):
        fx_mul(ctx, FMT, _fx(1.0), _fx(1.0))
        assert ctx.tally.count("imul64") == 1
        assert ctx.slots == UPMEM_COSTS.int_mul64 + UPMEM_COSTS.int_alu

    def test_mul_cheaper_than_float_mul(self, ctx):
        fx_mul(ctx, FMT, _fx(1.0), _fx(1.0))
        assert ctx.slots < UPMEM_COSTS.fp_mul

    def test_div(self, ctx):
        out = fx_div(ctx, FMT, _fx(3.0), _fx(2.0))
        assert FMT.to_float(out) == pytest.approx(1.5, abs=FMT.resolution)

    def test_shift(self, ctx):
        assert fx_shift(ctx, FMT, _fx(1.0), 2) == _fx(4.0)
        assert fx_shift(ctx, FMT, _fx(1.0), -2) == _fx(0.25)

    @given(st.floats(min_value=-2.5, max_value=2.5),
           st.floats(min_value=-2.5, max_value=2.5))
    def test_mul_approximates_real_product(self, a, b):
        ctx = CycleCounter()
        out = fx_mul(ctx, FMT, _fx(a), _fx(b))
        assert FMT.to_float(out) == pytest.approx(a * b, abs=1e-7)


class TestAddressHelpers:
    def test_round_index(self, ctx):
        # round(5.75 * 2^-2) with shift on a Q.3 toy: use Q3_28 raw math.
        raw = _fx(5.75)
        idx = fx_round_index(ctx, FMT, raw, FMT.frac_bits)  # round to integer
        assert idx == 6

    def test_round_index_half_up(self, ctx):
        idx = fx_round_index(ctx, FMT, _fx(2.5), FMT.frac_bits)
        assert idx == 3

    def test_frac_extracts_interpolation_weight(self, ctx):
        raw = _fx(3.25)
        delta = fx_frac(ctx, FMT, raw, FMT.frac_bits)
        assert FMT.to_float(delta) == 0.25

    def test_frac_zero_shift(self, ctx):
        # shift = frac_bits means index granularity 1.0.
        delta = fx_frac(ctx, FMT, _fx(5.0), FMT.frac_bits)
        assert delta == 0


class TestVectorTwins:
    @given(st.lists(raw_values, min_size=1, max_size=16),
           st.lists(raw_values, min_size=1, max_size=16))
    def test_add_vec_matches_scalar(self, xs, ys):
        n = min(len(xs), len(ys))
        a = np.array(xs[:n], dtype=np.int64)
        b = np.array(ys[:n], dtype=np.int64)
        out = fx_add_vec(FMT, a, b)
        ctx = CycleCounter()
        for i in range(n):
            assert out[i] == fx_add(ctx, FMT, int(a[i]), int(b[i]))

    @given(st.lists(raw_values, min_size=1, max_size=16))
    def test_mul_vec_matches_scalar(self, xs):
        a = np.array(xs, dtype=np.int64)
        b = a[::-1].copy()
        out = fx_mul_vec(FMT, a, b)
        ctx = CycleCounter()
        for i in range(len(xs)):
            assert out[i] == fx_mul(ctx, FMT, int(a[i]), int(b[i]))

    def test_sub_vec(self):
        a = np.array([_fx(1.0), _fx(2.0)])
        b = np.array([_fx(0.5), _fx(3.0)])
        out = fx_sub_vec(FMT, a, b)
        assert FMT.to_float(out).tolist() == [0.5, -1.0]
