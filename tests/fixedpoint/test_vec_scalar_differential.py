"""Scalar / vectorized / FxArray fixed-point arithmetic: one semantics.

Three implementations of each fixed-point op coexist — the counted scalar
``fx_*`` functions PIM kernels trace, the ``fx_*_vec`` numpy twins the
classifiers use, and the ``FxArray`` operators host-side pipelines use.
Any raw-word divergence between them is a silent correctness bug: a table
built with one and evaluated with another would disagree exactly at the
wrap boundaries.

Hypothesis samples the *full* raw word range of every registered format
(plus pinned boundary words), asserting all three paths produce identical
raw words — including two's-complement wraparound — and that division by
zero raises ``ZeroDivisionError`` identically in all three.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import (
    FxArray,
    Q1_30,
    Q3_28,
    Q15_16,
    fx_add,
    fx_add_vec,
    fx_div,
    fx_div_vec,
    fx_mul,
    fx_mul_vec,
    fx_neg,
    fx_sub,
    fx_sub_vec,
)
from repro.isa.counter import CycleCounter

FORMATS = [Q3_28, Q15_16, Q1_30]
_IDS = [f"s{f.int_bits}.{f.frac_bits}" for f in FORMATS]

#: Words any off-by-one-lsb or sign-handling defect hits first.
def _boundary_words(fmt):
    return [fmt.min_raw, fmt.min_raw + 1, -1, 0, 1,
            fmt.max_raw - 1, fmt.max_raw]


def _raw_words(fmt):
    return st.integers(min_value=fmt.min_raw, max_value=fmt.max_raw)


def _arr(raw, fmt):
    return FxArray(np.array([raw], dtype=np.int64), fmt)


def _assert_triple(fmt, scalar_fn, vec_fn, arr_fn, a, b=None):
    """Scalar op, _vec twin, and FxArray operator agree on raw words."""
    ctx = CycleCounter()
    if b is None:
        want = scalar_fn(ctx, fmt, a)
        got_vec = vec_fn(fmt, np.array([a], dtype=np.int64))
        got_arr = arr_fn(_arr(a, fmt))
    else:
        want = scalar_fn(ctx, fmt, a, b)
        got_vec = vec_fn(fmt, np.array([a], dtype=np.int64),
                         np.array([b], dtype=np.int64))
        got_arr = arr_fn(_arr(a, fmt), _arr(b, fmt))
    assert int(got_vec[0]) == want, f"{fmt}: vec {int(got_vec[0])} != {want}"
    assert int(got_arr.raw[0]) == want, \
        f"{fmt}: FxArray {int(got_arr.raw[0])} != {want}"
    assert fmt.min_raw <= want <= fmt.max_raw


class TestFullRange:
    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_add(self, fmt, data):
        a = data.draw(_raw_words(fmt))
        b = data.draw(_raw_words(fmt))
        _assert_triple(fmt, fx_add, fx_add_vec, lambda x, y: x + y, a, b)

    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_sub(self, fmt, data):
        a = data.draw(_raw_words(fmt))
        b = data.draw(_raw_words(fmt))
        _assert_triple(fmt, fx_sub, fx_sub_vec, lambda x, y: x - y, a, b)

    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_mul(self, fmt, data):
        a = data.draw(_raw_words(fmt))
        b = data.draw(_raw_words(fmt))
        _assert_triple(fmt, fx_mul, fx_mul_vec, lambda x, y: x * y, a, b)

    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_div(self, fmt, data):
        a = data.draw(_raw_words(fmt))
        b = data.draw(_raw_words(fmt).filter(lambda v: v != 0))
        _assert_triple(fmt, fx_div, fx_div_vec, lambda x, y: x / y, a, b)

    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_neg(self, fmt, data):
        a = data.draw(_raw_words(fmt))
        ctx = CycleCounter()
        want = fx_neg(ctx, fmt, a)
        got = -_arr(a, fmt)
        assert int(got.raw[0]) == want
        # The _vec twin of negate is subtraction from zero.
        assert int(fx_sub_vec(fmt, np.zeros(1, dtype=np.int64),
                              np.array([a], dtype=np.int64))[0]) == want


class TestBoundaries:
    """Every pairing of boundary words, exhaustively, per format."""

    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    def test_add_sub_mul_boundary_pairs(self, fmt):
        words = _boundary_words(fmt)
        for a in words:
            for b in words:
                _assert_triple(fmt, fx_add, fx_add_vec,
                               lambda x, y: x + y, a, b)
                _assert_triple(fmt, fx_sub, fx_sub_vec,
                               lambda x, y: x - y, a, b)
                _assert_triple(fmt, fx_mul, fx_mul_vec,
                               lambda x, y: x * y, a, b)

    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    def test_div_boundary_pairs(self, fmt):
        words = _boundary_words(fmt)
        for a in words:
            for b in words:
                if b == 0:
                    continue
                _assert_triple(fmt, fx_div, fx_div_vec,
                               lambda x, y: x / y, a, b)

    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    def test_neg_min_raw_wraps_to_itself(self, fmt):
        # Two's complement: -min_raw overflows back to min_raw.
        ctx = CycleCounter()
        assert fx_neg(ctx, fmt, fmt.min_raw) == fmt.min_raw
        assert int((-_arr(fmt.min_raw, fmt)).raw[0]) == fmt.min_raw


class TestDivisionByZero:
    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    def test_all_three_paths_raise(self, fmt):
        with pytest.raises(ZeroDivisionError):
            fx_div(CycleCounter(), fmt, 1, 0)
        with pytest.raises(ZeroDivisionError):
            fx_div_vec(fmt, np.array([1], dtype=np.int64),
                       np.array([0], dtype=np.int64))
        with pytest.raises(ZeroDivisionError):
            _arr(1, fmt) / _arr(0, fmt)

    @pytest.mark.parametrize("fmt", FORMATS, ids=_IDS)
    def test_vec_raises_on_any_zero_lane(self, fmt):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([1, 0, 3], dtype=np.int64)
        with pytest.raises(ZeroDivisionError):
            fx_div_vec(fmt, a, b)
        with pytest.raises(ZeroDivisionError):
            FxArray(a, fmt) / FxArray(b, fmt)
