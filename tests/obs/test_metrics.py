"""Tests for the metrics registry and its module-level helpers."""

from repro.obs.metrics import (
    MetricsRegistry,
    active_metrics,
    attach_metrics,
    collecting,
    detach_metrics,
    inc,
    observe,
)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(4)
        assert reg.value("hits") == 5
        assert reg.value("never", default=-1) == -1

    def test_gauge_summary(self):
        reg = MetricsRegistry()
        g = reg.gauge("frac")
        for v in (0.5, 0.2, 0.9):
            g.observe(v)
        assert g.last == 0.9 and g.min == 0.2 and g.max == 0.9
        assert g.count == 3

    def test_to_dict_schema(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").observe(1.5)
        blob = reg.to_dict()
        assert blob["schema"] == "repro-metrics/1"
        assert list(blob["metrics"]) == ["a", "b"]  # sorted
        assert blob["metrics"]["b"] == {"type": "counter", "value": 2}
        assert blob["metrics"]["a"]["type"] == "gauge"

    def test_report_renders_both_kinds(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.gauge("g").observe(0.25)
        text = reg.report()
        assert "n" in text and "3" in text
        assert "last=0.25" in text


class TestHelpers:
    def test_noop_when_detached(self):
        detach_metrics()
        inc("anything")  # must not raise, must not create state
        observe("gauge", 1.0)
        assert active_metrics() is None

    def test_attach_receives(self):
        reg = MetricsRegistry()
        attach_metrics(reg)
        try:
            inc("c", 2)
            observe("g", 0.5)
        finally:
            detach_metrics()
        assert reg.value("c") == 2
        assert reg.gauge("g").last == 0.5

    def test_collecting_restores_previous(self):
        outer = MetricsRegistry()
        with collecting(outer):
            with collecting() as inner:
                inc("x")
            assert active_metrics() is outer
            inc("y")
        assert active_metrics() is None
        assert inner.value("x") == 1
        assert outer.value("y") == 1
        assert outer.value("x") == 0


class TestInstrumentationSites:
    def test_batch_engine_emits_path_attribution(self):
        import numpy as np

        from repro.api import make_method
        from repro.batch import batch_tally

        m = make_method("sin", "llut_i", density_log2=10).setup()
        xs = np.linspace(0.1, 6.0, 128).astype(np.float32)
        with collecting() as reg:
            res = batch_tally(m, xs)
        assert reg.value("batch.calls") == 1
        assert reg.value("batch.elements") == 128
        assert reg.value("batch.paths_traced") == len(res.paths)
        # The per-path products sum exactly to the aggregate slot count.
        slots = sum(reg.value(f"batch.path[{p.key}].slots")
                    for p in res.paths)
        counts = sum(reg.value(f"batch.path[{p.key}].count")
                     for p in res.paths)
        assert slots == res.tally.slots
        assert counts == res.n

    def test_tablecache_hits_and_misses(self, tmp_path):
        from repro.api import make_method
        from repro.core.tablecache import TableCache

        cache = TableCache(tmp_path)
        with collecting() as reg:
            cache.setup(make_method("sin", "llut_i", density_log2=8))
            cache.setup(make_method("sin", "llut_i", density_log2=8))
        assert reg.value("tablecache.misses") == 1
        assert reg.value("tablecache.hits") == 1

    def test_sweep_plan_cache_metrics(self):
        from repro.analysis.sweep import default_inputs, sweep_method
        from repro.plan.cache import PlanCache

        inputs = default_inputs("sin", n=256)
        cache = PlanCache()
        with collecting() as reg:
            sweep_method("sin", "llut_i", "density_log2", (8,),
                         placement="mram", inputs=inputs, sample_size=8,
                         plan_cache=cache)
            sweep_method("sin", "llut_i", "density_log2", (8,),
                         placement="wram", inputs=inputs, sample_size=8,
                         plan_cache=cache)
        # Two distinct placements: two compiled plans, one shared table
        # image (the wram point retargets the mram build via the pool).
        assert reg.value("plancache.misses") == 2
        assert reg.value("plancache.table_misses") == 1
        assert reg.value("plancache.table_hits") == 1
        assert reg.value("plan.compiles") == 2
        assert reg.value("sweep.points") == 2

    def test_dpu_observes_dma_hiding(self):
        import numpy as np

        from repro.pim.dpu import DPU

        def kernel(ctx, x):
            return ctx.fadd(x, 1.0)

        with collecting() as reg:
            DPU().run_kernel(kernel, np.zeros(64, dtype=np.float32))
        assert reg.value("dpu.kernel_runs") == 1
        g = reg.gauge("dpu.dma_hidden_fraction")
        assert g.count == 1 and 0.0 <= g.last <= 1.0
