"""Tests for bench emission, span reconciliation, and the fig5 guard."""

import json

import pytest

from repro.obs import bench as bench_mod
from repro.obs.bench import (
    BENCH_SCHEMA,
    check_fig5_artifacts,
    emit_bench,
    fig5_artifact_texts,
    trace_run,
)


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """One quick emitted snapshot shared by the schema tests."""
    path = tmp_path_factory.mktemp("bench") / "BENCH_obs.json"
    emit_bench(path, quick=True)
    return json.loads(path.read_text())


class TestEmission:
    def test_schema_versioned(self, snapshot):
        assert snapshot["schema"] == BENCH_SCHEMA
        assert snapshot["quick"] is True
        assert snapshot["wall_seconds"] > 0

    def test_fig5_section(self, snapshot):
        fig5 = snapshot["sections"]["fig5"]
        assert fig5["n_points"] == len(fig5["rows"]) > 0
        for row in fig5["rows"]:
            assert set(row) == {"method", "placement", "param", "rmse",
                                "cycles_per_element"}
            assert row["cycles_per_element"] > 0

    def test_fig9_section(self, snapshot):
        rows = snapshot["sections"]["fig9"]["rows"]
        assert {r["workload"] for r in rows} == \
            {"blackscholes", "sigmoid", "softmax"}
        assert all(r["simulated_seconds"] > 0 for r in rows)

    def test_batch_section_beats_scalar(self, snapshot):
        batch = snapshot["sections"]["batch"]
        assert batch["batch_vs_scalar_speedup"] > 1.0
        assert batch["n_cost_paths"] >= 1
        assert batch["aggregate_slots"] > 0

    def test_phase_section_reconciles(self, snapshot):
        phases = snapshot["sections"]["system_phases"]
        assert phases["reconciles"] is True
        assert set(phases["phases"]) == \
            {"host_to_pim", "kernel", "pim_to_host", "launch"}


class TestTraceRun:
    def test_span_totals_reconcile_with_result(self):
        tracer, registry, result = trace_run(
            "sin", "llut_i", n=256, params={"density_log2": 10})
        run_span = tracer.find("system.run")
        # Summed in the order SystemRunResult.total_seconds adds its terms,
        # the phase attributions reproduce the total bit-for-bit.
        by_name = {c.name: c.attrs["sim_seconds"]
                   for c in run_span.children}
        total = (by_name["kernel"] + by_name["host_to_pim"]
                 + by_name["pim_to_host"] + by_name["launch"])
        assert total == result.total_seconds
        assert run_span.attrs["sim_seconds"] == result.total_seconds

    def test_kernel_span_matches_per_dpu_tally(self):
        tracer, _, result = trace_run(
            "sin", "llut_i", n=256, params={"density_log2": 10})
        kernel = tracer.find("kernel")
        assert kernel.attrs["per_dpu_cycles"] == result.per_dpu.cycles
        assert kernel.attrs["slots"] == result.per_dpu.total_tally.slots

    def test_setup_phase_traced(self):
        tracer, _, _ = trace_run(
            "sin", "llut_i", n=128, params={"density_log2": 10})
        install = tracer.find("host.install")
        build = install.find("table_build")
        assert build.attrs["table_bytes"] > 0
        assert install.attrs["sim_seconds"] > 0


class TestFig5Guard:
    @pytest.fixture()
    def tiny_world(self, tmp_path, monkeypatch):
        """A miniature fig5 sweep plus artifacts derived from it."""
        from repro.analysis.sweep import default_inputs, sweep_method

        points = sweep_method("sin", "llut_i", "density_log2", (8, 10),
                              inputs=default_inputs("sin", n=256),
                              sample_size=8)
        monkeypatch.setattr("repro.analysis.figures.fig5_data",
                            lambda **kw: points)
        out = tmp_path / "out"
        out.mkdir()
        for name, text in fig5_artifact_texts(points).items():
            (out / name).write_text(text + "\n")
        return out

    def test_fresh(self, tiny_world):
        status = check_fig5_artifacts(tiny_world)
        assert set(status.values()) == {"fresh"}

    def test_stale_single_cycle_drift(self, tiny_world):
        # Nudge one cycles number by the +2 the seed artifact suffered.
        path = tiny_world / "fig5_cycles.csv"
        lines = path.read_text().splitlines(keepends=True)
        header = lines[0].split(",")
        col = header.index("cycles_per_element")
        cells = lines[1].rstrip("\r\n").split(",")
        cells[col] = str(float(cells[col]) + 2.0)
        lines[1] = ",".join(cells) + "\r\n"
        path.write_text("".join(lines))
        status = check_fig5_artifacts(tiny_world)
        assert status["fig5_cycles.csv"] == "stale"
        assert status["fig5_cycles.txt"] == "fresh"

    def test_missing(self, tiny_world):
        (tiny_world / "fig5_cycles.json").unlink()
        status = check_fig5_artifacts(tiny_world)
        assert status["fig5_cycles.json"] == "missing"

    def test_committed_artifacts_guard_is_wired(self):
        # The real guard (full sweep) runs in CI; here just pin that the
        # committed files exist where the guard looks.
        import pathlib
        out = pathlib.Path(bench_mod.__file__).resolve().parents[3] \
            / "benchmarks" / "out"
        for name in bench_mod.FIG5_ARTIFACTS:
            assert (out / name).exists()
