"""Tests for the span tracer: nesting, export, and the null fast path."""

import json

import pytest

from repro.obs.tracer import (
    NULL_SPAN,
    Tracer,
    active_tracer,
    attach,
    detach,
    span,
    tracing,
)


class TestSpans:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as sp:
                sp.set(cycles=42)
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert outer.children[0].name == "inner"
        assert outer.children[0].attrs == {"cycles": 42}

    def test_siblings(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [c.name for c in tracer.roots[0].children] == ["a", "b"]

    def test_duration_positive(self):
        tracer = Tracer()
        with tracer.span("timed"):
            sum(range(1000))
        assert tracer.roots[0].duration_ns > 0

    def test_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c") as sp:
                    sp.set(hit=True)
        assert tracer.find("c").attrs == {"hit": True}
        assert tracer.find("nope") is None

    def test_exception_closes_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.current is None
        assert tracer.roots[0].children[0].end_ns is not None

    def test_iter_spans_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "c"]


class TestActiveTracer:
    def test_span_without_tracer_is_null(self):
        detach()
        handle = span("anything", key=1)
        assert handle is NULL_SPAN
        with handle as sp:
            assert sp.set(more=2) is sp  # chainable no-op

    def test_attach_detach(self):
        tracer = Tracer()
        attach(tracer)
        try:
            assert active_tracer() is tracer
            with span("root") as sp:
                sp.set(x=1)
        finally:
            detach()
        assert active_tracer() is None
        assert tracer.roots[0].attrs == {"x": 1}

    def test_tracing_contextmanager_restores_previous(self):
        outer = Tracer()
        with tracing(outer):
            with tracing() as inner:
                assert active_tracer() is inner
                with span("inner-span"):
                    pass
            assert active_tracer() is outer
        assert active_tracer() is None
        assert inner.roots[0].name == "inner-span"
        assert outer.roots == []


class TestExport:
    def _populated(self):
        tracer = Tracer()
        with tracer.span("run", n=3):
            with tracer.span("kernel") as sp:
                sp.set(sim_seconds=0.5, cycles=100)
        return tracer

    def test_to_dict_schema(self):
        blob = self._populated().to_dict()
        assert blob["schema"] == "repro-trace/1"
        assert blob["spans"][0]["name"] == "run"
        assert blob["spans"][0]["children"][0]["attrs"]["cycles"] == 100

    def test_chrome_trace_valid_json(self):
        trace = self._populated().to_chrome_trace()
        text = json.dumps(trace)  # must be serializable
        parsed = json.loads(text)
        events = parsed["traceEvents"]
        assert len(events) == 2
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        kernel = next(e for e in events if e["name"] == "kernel")
        assert kernel["args"]["sim_seconds"] == 0.5

    def test_chrome_trace_numpy_attrs_jsonable(self):
        import numpy as np
        tracer = Tracer()
        with tracer.span("np") as sp:
            sp.set(val=np.float32(1.5), count=np.int64(7))
        text = json.dumps(tracer.to_chrome_trace())
        args = json.loads(text)["traceEvents"][0]["args"]
        assert args["val"] == 1.5 and args["count"] == 7

    def test_tree_rendering(self):
        text = self._populated().tree()
        lines = text.splitlines()
        assert lines[0].startswith("run")
        assert lines[1].startswith("  kernel")
        assert "sim_seconds=0.5" in lines[1]
