"""Tests for the cycle-counting PIM ISA context."""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.counter import CycleCounter, Tally
from repro.isa.opcosts import IDEALIZED_COSTS, UPMEM_COSTS


class TestCharging:
    def test_int_add_costs_one_slot(self, ctx):
        ctx.iadd(1, 2)
        assert ctx.slots == UPMEM_COSTS.int_alu

    def test_float_mul_cost(self, ctx):
        ctx.fmul(1.0, 2.0)
        assert ctx.slots == UPMEM_COSTS.fp_mul

    def test_costs_accumulate(self, ctx):
        ctx.fadd(1.0, 2.0)
        ctx.fdiv(1.0, 2.0)
        assert ctx.slots == UPMEM_COSTS.fp_add + UPMEM_COSTS.fp_div

    def test_op_counts_recorded(self, ctx):
        ctx.fmul(1.0, 2.0)
        ctx.fmul(2.0, 3.0)
        ctx.fadd(1.0, 1.0)
        assert ctx.tally.count("fmul") == 2
        assert ctx.tally.count("fadd") == 1
        assert ctx.tally.count("fdiv") == 0

    def test_reset_returns_and_clears(self, ctx):
        ctx.imul(3, 4)
        tally = ctx.reset()
        assert tally.slots == UPMEM_COSTS.int_mul
        assert ctx.slots == 0

    def test_custom_cost_model(self):
        ctx = CycleCounter(IDEALIZED_COSTS)
        ctx.fmul(1.0, 2.0)
        assert ctx.slots == 1


class TestIntegerSemantics:
    def test_idiv_truncates_toward_zero(self, ctx):
        assert ctx.idiv(7, 2) == 3
        assert ctx.idiv(-7, 2) == -3
        assert ctx.idiv(7, -2) == -3

    def test_idiv64_truncates_toward_zero(self, ctx):
        assert ctx.idiv64(-9, 4) == -2

    def test_shr_is_arithmetic(self, ctx):
        assert ctx.shr(-8, 1) == -4

    def test_icmp_three_way(self, ctx):
        assert ctx.icmp(1, 2) == -1
        assert ctx.icmp(2, 2) == 0
        assert ctx.icmp(3, 2) == 1

    def test_logic_ops(self, ctx):
        assert ctx.iand(0b1100, 0b1010) == 0b1000
        assert ctx.ior(0b1100, 0b1010) == 0b1110
        assert ctx.ixor(0b1100, 0b1010) == 0b0110


class TestFloat32Semantics:
    def test_fadd_rounds_to_float32(self, ctx):
        # 1 + 2^-25 is exactly 1 in float32 (below half-ulp).
        assert ctx.fadd(1.0, 2.0 ** -25) == np.float32(1.0)

    def test_fmul_float32_rounding(self, ctx):
        a, b = np.float32(1.1), np.float32(2.3)
        assert ctx.fmul(a, b) == np.float32(a * b)

    def test_fdiv(self, ctx):
        assert ctx.fdiv(1.0, 3.0) == np.float32(np.float32(1.0) / np.float32(3.0))

    def test_fcmp(self, ctx):
        assert ctx.fcmp(1.0, 2.0) == -1
        assert ctx.fcmp(2.0, 2.0) == 0

    def test_fneg_fabs(self, ctx):
        assert ctx.fneg(1.5) == np.float32(-1.5)
        assert ctx.fabs(-2.5) == np.float32(2.5)

    @given(st.floats(width=32, allow_nan=False, allow_infinity=False))
    def test_fadd_matches_numpy(self, x):
        ctx = CycleCounter()
        assert ctx.fadd(x, 1.0) == np.float32(np.float32(x) + np.float32(1.0))


class TestConversions:
    def test_f2i_truncates(self, ctx):
        assert ctx.f2i(2.9) == 2
        assert ctx.f2i(-2.9) == -2

    def test_ffloor(self, ctx):
        assert ctx.ffloor(2.9) == 2
        assert ctx.ffloor(-2.1) == -3

    def test_fround_half_away(self, ctx):
        assert ctx.fround(2.5) == 3
        assert ctx.fround(-2.5) == -3
        assert ctx.fround(2.4) == 2

    def test_f2fx_and_back(self, ctx):
        raw = ctx.f2fx(1.5, 28)
        assert raw == 3 << 27
        assert ctx.fx2f(raw, 28) == np.float32(1.5)

    def test_ldexp_through_counter(self, ctx):
        assert ctx.ldexp(1.5, 3) == np.float32(12.0)
        assert ctx.slots == UPMEM_COSTS.ldexp

    def test_frexp_through_counter(self, ctx):
        m, e = ctx.frexp(12.0)
        assert (float(m), e) == math.frexp(12.0)


class TestMemory:
    def test_wram_read_write(self, ctx):
        table = [10, 20, 30]
        assert ctx.wram_read(table, 1) == 20
        ctx.wram_write(table, 2, 99)
        assert table[2] == 99
        assert ctx.slots == 2 * UPMEM_COSTS.wram_access

    def test_mram_read_accounting(self, ctx):
        table = np.arange(10, dtype=np.float32)
        value = ctx.mram_read(table, 3, elem_bytes=4)
        assert value == 3
        assert ctx.tally.dma_transactions == 1
        assert ctx.tally.dma_bytes == 4
        assert ctx.tally.dma_latency == UPMEM_COSTS.mram_dma_per_8b
        assert ctx.slots == UPMEM_COSTS.mram_dma_setup

    def test_mram_read_multi_beat(self, ctx):
        table = np.arange(10)
        ctx.mram_read(table, 0, elem_bytes=24)
        assert ctx.tally.dma_latency == 3 * UPMEM_COSTS.mram_dma_per_8b


class TestTally:
    def test_add_merges(self):
        a = Tally(slots=10, dma_bytes=4)
        a.counts["fmul"] = 2
        b = Tally(slots=5, dma_bytes=8)
        b.counts["fmul"] = 1
        b.counts["fadd"] = 3
        a.add(b)
        assert a.slots == 15
        assert a.dma_bytes == 12
        assert a.counts == {"fmul": 3, "fadd": 3}
