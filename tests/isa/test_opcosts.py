"""Tests for the operation cost model."""

import dataclasses

import pytest

from repro.isa.opcosts import IDEALIZED_COSTS, UPMEM_COSTS, OpCosts


class TestDefaults:
    def test_native_ops_are_single_slot(self):
        assert UPMEM_COSTS.int_alu == 1
        assert UPMEM_COSTS.branch == 1
        assert UPMEM_COSTS.wram_access == 1

    def test_float_ops_dominate_integer_ops(self):
        assert UPMEM_COSTS.fp_add > UPMEM_COSTS.int_alu
        assert UPMEM_COSTS.fp_mul > UPMEM_COSTS.int_mul
        assert UPMEM_COSTS.fp_div > UPMEM_COSTS.fp_mul

    def test_float_mul_much_costlier_than_add(self):
        # The L-LUT-vs-M-LUT advantage rests on this ratio.
        assert UPMEM_COSTS.fp_mul >= 3 * UPMEM_COSTS.fp_add

    def test_ldexp_is_cheap(self):
        # The whole point of the L-LUT family.
        assert UPMEM_COSTS.ldexp < UPMEM_COSTS.fp_add / 2

    def test_fixed_mul_cheaper_than_float_mul(self):
        assert UPMEM_COSTS.fixed_mul < UPMEM_COSTS.fp_mul

    def test_fixed_add_is_native(self):
        assert UPMEM_COSTS.fixed_add == UPMEM_COSTS.int_alu


class TestReplace:
    def test_replace_makes_copy(self):
        fast = UPMEM_COSTS.replace(fp_mul=10)
        assert fast.fp_mul == 10
        assert UPMEM_COSTS.fp_mul != 10
        assert fast.fp_add == UPMEM_COSTS.fp_add

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            UPMEM_COSTS.fp_mul = 1


class TestIdealized:
    def test_everything_single_slot(self):
        for field in dataclasses.fields(OpCosts):
            assert getattr(IDEALIZED_COSTS, field.name) == 1, field.name
