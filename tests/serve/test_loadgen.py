"""Load generator: seeded determinism, report accounting, shed counting."""

import numpy as np

from repro.serve import FAST_PROFILE, MIXED_PROFILE, ServeConfig, run_load
from repro.serve.loadgen import _draw_request


class TestDeterminism:
    def test_same_seed_same_traffic_content(self):
        """The (kernel, size, values) stream is a pure function of seed."""
        def draws(seed):
            out = []
            for child in np.random.SeedSequence(seed).spawn(4):
                rng = np.random.default_rng(child)
                for _ in range(6):
                    item, xs = _draw_request(
                        MIXED_PROFILE.items, MIXED_PROFILE.weights(), rng)
                    out.append((item.spec.label, xs.tobytes()))
            return out

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_same_seed_same_run_accounting(self):
        kwargs = dict(clients=6, requests_per_client=4, seed=11)
        a = run_load(FAST_PROFILE, **kwargs)
        b = run_load(FAST_PROFILE, **kwargs)
        # Content-derived figures match run to run; only wall-clock varies.
        assert a.requests == b.requests == 24
        assert a.completed == b.completed == 24
        assert a.shed == b.shed == 0
        assert (a.server_stats["batched_elements"]
                == b.server_stats["batched_elements"])


class TestReport:
    def test_report_fields_and_verification(self):
        report = run_load(FAST_PROFILE, clients=8, requests_per_client=3,
                          seed=5, verify=True)
        assert report.requests == 24
        assert report.completed == 24
        assert report.plan_builds == len(FAST_PROFILE.items)
        assert report.singleflight_leaders == len(FAST_PROFILE.items)
        assert report.coalesce_ratio > 1.0
        assert report.batches >= len(FAST_PROFILE.items)
        assert report.latency_p99 >= report.latency_p95 >= report.latency_p50
        assert report.verified == 24
        assert report.mismatches == 0
        summary = report.summary()
        assert "coalesce ratio" in summary
        assert "bit-exact" in summary

    def test_mixed_profile_covers_every_kernel_family(self):
        report = run_load(MIXED_PROFILE, clients=12, requests_per_client=4,
                          seed=3)
        assert report.completed == 48
        # Enough draws that all six kernels appear -> six plan builds.
        assert report.plan_builds == len(MIXED_PROFILE.items)


class TestShedding:
    def test_tiny_hard_limit_sheds_and_accounts(self):
        config = ServeConfig(max_batch=1, max_pending=1, hard_limit=2)
        report = run_load(FAST_PROFILE, clients=16, requests_per_client=2,
                          seed=1, config=config)
        assert report.shed > 0
        assert report.completed + report.shed == report.requests
        assert report.server_stats["admission"]["shed"] == report.shed
