"""SingleFlight: N concurrent identical calls run the builder exactly once."""

import asyncio

from repro.serve.singleflight import SingleFlight


def _run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_concurrent_burst_builds_once(self):
        flight = SingleFlight()
        builds = []

        async def builder():
            builds.append(1)
            await asyncio.sleep(0)  # let the whole burst join
            return "plan"

        async def main():
            return await asyncio.gather(
                *(flight.run("k", builder) for _ in range(16)))

        results = _run(main())
        assert results == ["plan"] * 16
        assert len(builds) == 1
        assert flight.leaders == 1
        assert flight.followers == 15
        assert len(flight) == 0

    def test_distinct_keys_fly_separately(self):
        flight = SingleFlight()
        builds = []

        def builder_for(key):
            async def builder():
                builds.append(key)
                await asyncio.sleep(0)
                return key.upper()
            return builder

        async def main():
            return await asyncio.gather(
                flight.run("a", builder_for("a")),
                flight.run("b", builder_for("b")),
                flight.run("a", builder_for("a")),
            )

        assert _run(main()) == ["A", "B", "A"]
        assert sorted(builds) == ["a", "b"]
        assert flight.leaders == 2
        assert flight.followers == 1

    def test_later_call_runs_builder_again(self):
        """Flights are per-burst, not a cache: landed keys rebuild."""
        flight = SingleFlight()
        builds = []

        async def main():
            def builder():
                builds.append(1)
                return len(builds)
            first = await flight.run("k", builder)
            second = await flight.run("k", builder)
            return first, second

        assert _run(main()) == (1, 2)
        assert flight.leaders == 2
        assert flight.followers == 0

    def test_sync_builder_supported(self):
        flight = SingleFlight()

        async def main():
            return await flight.run("k", lambda: 42)

        assert _run(main()) == 42

    def test_exception_shared_with_followers(self):
        flight = SingleFlight()

        async def builder():
            await asyncio.sleep(0)
            raise ValueError("table build failed")

        async def main():
            return await asyncio.gather(
                *(flight.run("k", builder) for _ in range(4)),
                return_exceptions=True)

        results = _run(main())
        assert all(isinstance(r, ValueError) for r in results)
        assert flight.leaders == 1
        assert flight.followers == 3
        assert len(flight) == 0  # failed flight removed: next call retries

    def test_follower_cancellation_does_not_kill_the_flight(self):
        flight = SingleFlight()

        async def builder():
            await asyncio.sleep(0.01)
            return "plan"

        async def main():
            leader = asyncio.ensure_future(flight.run("k", builder))
            await asyncio.sleep(0)
            follower = asyncio.ensure_future(flight.run("k", builder))
            await asyncio.sleep(0)
            follower.cancel()
            return await leader

        assert _run(main()) == "plan"

    def test_stats(self):
        flight = SingleFlight()

        async def main():
            await flight.run("k", lambda: 1)

        _run(main())
        assert flight.stats() == {"leaders": 1, "followers": 0,
                                  "in_flight": 0}


class TestMetrics:
    def test_leader_and_follower_counters_emitted(self):
        from repro.obs.metrics import MetricsRegistry, collecting

        flight = SingleFlight()

        async def builder():
            await asyncio.sleep(0)
            return "plan"

        async def main():
            await asyncio.gather(
                *(flight.run("k", builder) for _ in range(3)))

        registry = MetricsRegistry()
        with collecting(registry):
            _run(main())
        assert registry.value("serve.singleflight.leaders") == 1
        assert registry.value("serve.singleflight.followers") == 2
