"""Server: coalescing, bit-exactness, single-flight, admission, drain."""

import asyncio

import numpy as np
import pytest

from repro.errors import (ConfigurationError, ServerClosedError,
                          ServerOverloadedError)
from repro.serve import ServeConfig, Server, normalize_request
from repro.serve.keys import spec_method

_F32 = np.float32


def _run(coro):
    return asyncio.run(coro)


def _inputs(function: str, n: int, seed: int) -> np.ndarray:
    from repro.core.functions.registry import get_function
    lo, hi = get_function(function).natural_range
    return np.random.default_rng(seed).uniform(lo, hi, n).astype(_F32)


# Mixed-kernel request profile: lookup, fused D-LUT, fixed-point, CORDIC.
MIXED = [
    ("sin", "llut_i"),
    ("tanh", "dlut"),
    ("gelu", "dlut_i"),
    ("sin", "llut_fx"),
    ("sin", "cordic"),
]

_DIRECT_CACHE = {}


def _direct(function: str, method: str, xs: np.ndarray) -> np.ndarray:
    """Reference evaluation of one request alone (bit-exact ground truth).

    ``Method.evaluate_vec`` is what ``PIMSystem.run``'s accuracy path
    computes; the differential suites prove it equals the scalar trace
    and the fused evaluator bit for bit.
    """
    m = _DIRECT_CACHE.get((function, method))
    if m is None:
        m = spec_method(normalize_request(function, method))
        m.setup()
        _DIRECT_CACHE[(function, method)] = m
    return m.evaluate_vec(xs)


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_batch(self):
        spec = normalize_request("sin", "llut_i")
        inputs = [_inputs("sin", 16 + i, seed=i) for i in range(12)]

        async def main():
            server = Server()
            results = await server.submit_many(
                [(spec, xs) for xs in inputs])
            await server.close()
            return server, results

        server, results = _run(main())
        assert server.batches == 1
        assert all(r.batch_requests == 12 for r in results)
        assert server.coalesce_ratio == 12.0

    def test_mixed_kernels_coalesce_per_lane(self):
        requests = []
        for i, (fn, meth) in enumerate(MIXED):
            spec = normalize_request(fn, meth)
            for j in range(3):
                requests.append((spec, _inputs(fn, 8 + j, seed=i * 10 + j)))

        async def main():
            server = Server()
            results = await server.submit_many(requests)
            await server.close()
            return server, results

        server, results = _run(main())
        # One batch per distinct kernel, three requests each.
        assert server.batches == len(MIXED)
        assert all(r.batch_requests == 3 for r in results)

    def test_max_batch_caps_one_dispatch(self):
        spec = normalize_request("sin", "llut_i")
        inputs = [_inputs("sin", 8, seed=i) for i in range(10)]

        async def main():
            server = Server(config=ServeConfig(max_batch=4))
            results = await server.submit_many([(spec, xs) for xs in inputs])
            await server.close()
            return server, results

        server, results = _run(main())
        assert server.batches >= 3
        assert max(r.batch_requests for r in results) <= 4

    def test_results_recorded_in_session(self):
        spec = normalize_request("sin", "llut_i")

        async def main():
            server = Server()
            await server.submit_spec(spec, _inputs("sin", 32, seed=1))
            await server.close()
            return server

        server = _run(main())
        assert len(server.session.launches) == 1
        assert server.session.launches[0].function == "llut_i:sin"
        assert server.session.launches[0].n_elements == 32


class TestBitExactness:
    def test_coalesced_slices_equal_direct_evaluation(self):
        """Every request's slice == evaluating that request alone."""
        requests, expected = [], []
        for i, (fn, meth) in enumerate(MIXED):
            spec = normalize_request(fn, meth)
            for j in range(4):
                xs = _inputs(fn, 5 + 3 * j, seed=100 + i * 10 + j)
                requests.append((spec, xs))
                expected.append(_direct(fn, meth, xs))

        async def main():
            server = Server()
            results = await server.submit_many(requests)
            await server.close()
            return results

        results = _run(main())
        for r, want in zip(results, expected):
            assert r.values.dtype == np.float32
            assert r.values.tobytes() == want.tobytes()

    def test_slices_are_owned_copies(self):
        spec = normalize_request("sin", "llut_i")

        async def main():
            server = Server()
            r = await server.submit_spec(spec, _inputs("sin", 16, seed=3))
            await server.close()
            return r

        r = _run(main())
        assert r.values.flags.owndata
        r.values[:] = 0.0  # writable: not a view pinning the memo


class TestSingleFlightBuilds:
    def test_n_identical_cold_requests_build_one_plan(self):
        spec = normalize_request("sin", "llut_i")
        inputs = [_inputs("sin", 8, seed=i) for i in range(16)]

        async def main():
            server = Server()
            await server.submit_many([(spec, xs) for xs in inputs])
            await server.close()
            return server

        server = _run(main())
        assert server.session.plans.misses == 1   # exactly one plan build
        assert server.session.plans.stats()["table_misses"] == 1
        flights = server.stats()["singleflight"]
        assert flights["leaders"] == 1
        assert flights["followers"] == 15

    def test_warm_lane_skips_the_flight(self):
        spec = normalize_request("sin", "llut_i")

        async def main():
            server = Server()
            await server.submit_spec(spec, _inputs("sin", 8, seed=0))
            await server.submit_spec(spec, _inputs("sin", 8, seed=1))
            await server.close()
            return server

        server = _run(main())
        assert server.stats()["singleflight"]["leaders"] == 1
        assert server.session.plans.misses == 1


class TestAdmission:
    def test_overload_sheds_with_server_overloaded_error(self):
        spec = normalize_request("sin", "llut_i")

        class Gated(Server):
            """Holds batches so pending depth actually accumulates."""

            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                self.gate = None

            async def _dispatch_batch(self, lane, xs):
                await self.gate.wait()
                return await super()._dispatch_batch(lane, xs)

        async def main():
            server = Gated(config=ServeConfig(
                max_batch=1, max_pending=2, hard_limit=4))
            server.gate = asyncio.Event()
            xs = _inputs("sin", 4, seed=0)
            tasks = [asyncio.ensure_future(server.submit_spec(spec, xs))
                     for _ in range(8)]
            for _ in range(20):
                await asyncio.sleep(0)
            server.gate.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            await server.close()
            return server, results

        server, results = _run(main())
        shed = [r for r in results if isinstance(r, ServerOverloadedError)]
        ok = [r for r in results if not isinstance(r, BaseException)]
        assert len(shed) == 4      # depth 4 = hard limit -> shed
        assert len(ok) == 4        # 2 admitted + 2 backpressured
        assert server._admission.shed == 4
        assert server._admission.waited >= 1

    def test_backpressure_waits_then_completes(self):
        spec = normalize_request("sin", "llut_i")

        async def main():
            server = Server(config=ServeConfig(
                max_batch=2, max_pending=2, hard_limit=100))
            xs = _inputs("sin", 4, seed=0)
            results = await server.submit_many([(spec, xs)] * 6)
            await server.close()
            return server, results

        server, results = _run(main())
        assert len(results) == 6
        assert server._admission.pending == 0

    def test_empty_inputs_rejected(self):
        spec = normalize_request("sin", "llut_i")

        async def main():
            server = Server()
            try:
                with pytest.raises(ConfigurationError):
                    await server.submit_spec(spec, [])
            finally:
                await server.close()

        _run(main())

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_batch=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(max_wait=-1.0)
        with pytest.raises(ConfigurationError):
            Server(config=ServeConfig(max_pending=10, hard_limit=5))


class TestClose:
    def test_drain_completes_admitted_requests(self):
        spec = normalize_request("sin", "llut_i")

        async def main():
            server = Server(config=ServeConfig(max_wait=0.05))
            task = asyncio.ensure_future(
                server.submit_spec(spec, _inputs("sin", 8, seed=0)))
            await asyncio.sleep(0)      # let it enqueue into the window
            await server.close(drain=True)
            return await task

        result = _run(main())
        assert result.n_elements == 8

    def test_submit_after_close_raises(self):
        spec = normalize_request("sin", "llut_i")

        async def main():
            server = Server()
            await server.close()
            with pytest.raises(ServerClosedError):
                await server.submit_spec(spec, _inputs("sin", 8, seed=0))

        _run(main())

    def test_nondrain_close_fails_queued_requests(self):
        spec = normalize_request("sin", "llut_i")

        class Never(Server):
            async def _dispatch_batch(self, lane, xs):
                await asyncio.sleep(3600)

        async def main():
            server = Never(config=ServeConfig(max_batch=1))
            tasks = [asyncio.ensure_future(
                server.submit_spec(spec, _inputs("sin", 8, seed=i)))
                for i in range(3)]
            for _ in range(10):
                await asyncio.sleep(0)
            await server.close(drain=False)
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = _run(main())
        assert all(isinstance(r, ServerClosedError) for r in results)

    def test_async_context_manager_drains(self):
        spec = normalize_request("sin", "llut_i")

        async def main():
            async with Server() as server:
                return await server.submit_spec(
                    spec, _inputs("sin", 8, seed=0))

        assert _run(main()).n_elements == 8


class TestScatterBackOrdering:
    def test_out_of_order_batch_completion_scatters_correctly(self):
        """Lane A's batch completes after lane B's; results still match."""
        spec_a = normalize_request("sin", "llut_i")
        spec_b = normalize_request("tanh", "dlut")
        xs_a = _inputs("sin", 20, seed=1)
        xs_b = _inputs("tanh", 24, seed=2)

        class Reordered(Server):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                self.b_done = asyncio.Event()

            async def _dispatch_batch(self, lane, xs):
                if lane.label == "llut_i:sin":
                    await self.b_done.wait()    # A finishes after B
                result = await super()._dispatch_batch(lane, xs)
                if lane.label == "dlut:tanh":
                    self.b_done.set()
                return result

        async def main():
            server = Reordered()
            ra, rb = await asyncio.gather(
                server.submit_spec(spec_a, xs_a),
                server.submit_spec(spec_b, xs_b))
            await server.close()
            return ra, rb

        ra, rb = _run(main())
        assert ra.values.tobytes() == _direct("sin", "llut_i", xs_a).tobytes()
        assert rb.values.tobytes() == _direct("tanh", "dlut", xs_b).tobytes()

    def test_interleaved_submission_order_maps_slices_correctly(self):
        """Alternating lanes: each result slice matches its own inputs."""
        requests, expected = [], []
        for j in range(6):
            fn, meth = MIXED[j % 2]
            spec = normalize_request(fn, meth)
            xs = _inputs(fn, 7 + j, seed=50 + j)
            requests.append((spec, xs))
            expected.append(_direct(fn, meth, xs))

        async def main():
            server = Server()
            results = await server.submit_many(requests)
            await server.close()
            return results

        results = _run(main())
        for r, want in zip(results, expected):
            assert r.values.tobytes() == want.tobytes()


class TestDispatchFailure:
    def test_batch_failure_propagates_to_every_rider(self):
        spec = normalize_request("sin", "llut_i")

        class Broken(Server):
            async def _dispatch_batch(self, lane, xs):
                raise RuntimeError("kernel exploded")

        async def main():
            server = Broken()
            results = await asyncio.gather(
                *(server.submit_spec(spec, _inputs("sin", 8, seed=i))
                  for i in range(3)),
                return_exceptions=True)
            await server.close()
            return server, results

        server, results = _run(main())
        assert all(isinstance(r, RuntimeError) for r in results)
        # Admission capacity fully released despite the failure.
        assert server._admission.pending == 0

    def test_server_survives_a_failed_batch(self):
        spec = normalize_request("sin", "llut_i")

        class FailOnce(Server):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                self.failed = False

            async def _dispatch_batch(self, lane, xs):
                if not self.failed:
                    self.failed = True
                    raise RuntimeError("transient")
                return await super()._dispatch_batch(lane, xs)

        async def main():
            server = FailOnce()
            with pytest.raises(RuntimeError):
                await server.submit_spec(spec, _inputs("sin", 8, seed=0))
            ok = await server.submit_spec(spec, _inputs("sin", 8, seed=1))
            await server.close()
            return ok

        assert _run(main()).n_elements == 8


class TestShardedDispatch:
    def test_sharded_serving_is_bit_identical(self):
        spec = normalize_request("sin", "llut_i")
        xs = _inputs("sin", 64, seed=9)

        async def main():
            server = Server(config=ServeConfig(shards=4))
            r = await server.submit_spec(spec, xs)
            await server.close()
            return r

        r = _run(main())
        assert r.values.tobytes() == _direct("sin", "llut_i", xs).tobytes()
