"""Request normalization: coalescing identity == plan-cache identity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pim.system import PIMSystem
from repro.plan.cache import PlanCache
from repro.serve.keys import (RequestSpec, normalize_request, request_key,
                              spec_method)


@pytest.fixture(scope="module")
def system():
    return PIMSystem()


class TestNormalization:
    def test_param_order_is_canonical(self):
        c = normalize_request("sin", "slut_i",
                              {"seg_bits": 4, "max_density_log2": 20})
        d = normalize_request("sin", "slut_i",
                              {"max_density_log2": 20, "seg_bits": 4})
        assert c == d
        assert hash(c) == hash(d)

    def test_typed_params_do_not_collide(self):
        one = normalize_request("sin", "llut", {"k": 1})
        true = normalize_request("sin", "llut", {"k": True})
        text = normalize_request("sin", "llut", {"k": "1"})
        assert len({one, true, text}) == 3

    def test_numpy_scalars_collapse_to_python_values(self):
        a = normalize_request("sin", "llut", {"density_log2": np.int64(8)})
        b = normalize_request("sin", "llut", {"density_log2": 8})
        assert a == b

    def test_defaults_are_applied(self):
        assert normalize_request("sin", "llut") == normalize_request(
            "sin", "llut", {}, placement="mram", assume_in_range=False)

    def test_placement_validated(self):
        with pytest.raises(ConfigurationError):
            normalize_request("sin", "llut", placement="sram")

    def test_non_string_param_names_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_request("sin", "llut", {1: 2})

    def test_param_kwargs_round_trips(self):
        spec = normalize_request(
            "sin", "slut_i", {"seg_bits": 4, "max_density_log2": 20})
        assert spec.param_kwargs() == {"seg_bits": 4, "max_density_log2": 20}

    def test_label(self):
        assert normalize_request("sin", "llut").label == "llut:sin"


class TestRequestKey:
    def test_matches_plan_cache_key(self, system):
        """The serve key IS the key PlanCache.plan would use."""
        spec = normalize_request("sin", "llut_i")
        method = spec_method(spec)
        served = request_key(spec, system, method=method)
        cached = PlanCache().key_for(system, method)
        assert served == cached

    def test_key_hits_the_plan_cache(self, system):
        spec = normalize_request("sin", "llut_i")
        cache = PlanCache()
        method = spec_method(spec)
        key = request_key(spec, system, method=method)
        assert key not in cache
        cache.plan(system, method)
        assert key in cache

    def test_qformat_knobs_split_keys(self, system):
        q1 = normalize_request("sin", "llut_fx", {"density_log2": 8})
        q2 = normalize_request("sin", "llut_fx", {"density_log2": 10})
        k1 = request_key(q1, system)
        k2 = request_key(q2, system)
        assert k1 != k2
        assert k1.table_key != k2.table_key

    def test_placement_splits_keys(self, system):
        mram = normalize_request("sin", "llut")
        wram = normalize_request("sin", "llut", placement="wram")
        k_m = request_key(mram, system)
        k_w = request_key(wram, system)
        assert k_m != k_w
        # Same table image though: the pool shares the build.
        assert k_m.table_key == k_w.table_key

    def test_assume_in_range_splits_keys(self, system):
        air = normalize_request("sin", "llut", assume_in_range=True)
        full = normalize_request("sin", "llut", assume_in_range=False)
        assert request_key(air, system) != request_key(full, system)

    def test_vec_flag_splits_keys(self, system):
        spec = normalize_request("sin", "llut")
        assert request_key(spec, system, vec=True) != \
            request_key(spec, system, vec=False)

    def test_spec_method_validates_support(self):
        spec = RequestSpec(function="sin", method="dlut")
        with pytest.raises(Exception):
            spec_method(spec)  # D-LUT cannot serve periodic sin
