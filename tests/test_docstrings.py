"""Quality gate: every public module, class, and function is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = set()


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        if info.name.rsplit(".", 1)[-1].startswith("_"):
            continue  # __main__ executes on import
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                if member.__doc__ and member.__doc__.strip():
                    continue
                # Overrides inherit their contract's documentation.
                inherited = any(
                    getattr(base, mname, None) is not None
                    and getattr(getattr(base, mname), "__doc__", None)
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )
