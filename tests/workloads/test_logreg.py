"""Tests for the logistic-regression inference workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter
from repro.pim.system import PIMSystem
from repro.workloads.logreg import (
    VARIANTS,
    LogisticRegression,
    generate_dataset,
    reference_probabilities,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(2000, n_features=16, seed=4)


@pytest.fixture(scope="module")
def system():
    return PIMSystem()


def _model(variant, dataset):
    features, weights, bias = dataset
    return LogisticRegression(variant).setup(weights, bias), features


class TestAccuracy:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_probabilities(self, variant, dataset):
        model, features = _model(variant, dataset)
        probs = model.probabilities(features).astype(np.float64)
        ref = reference_probabilities(features, dataset[1], dataset[2])
        assert np.abs(probs - ref).max() < 2e-5, variant

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_kernel_matches_vectorized(self, variant, dataset):
        model, features = _model(variant, dataset)
        ctx = CycleCounter()
        scalar = np.array(
            [model.kernel(ctx, row) for row in features[:8]], dtype=np.float32
        )
        if variant == "host_sigmoid":
            # The kernel returns logits; apply the host sigmoid.
            scalar = (1.0 / (1.0 + np.exp(-scalar.astype(np.float64)))
                      ).astype(np.float32)
        np.testing.assert_allclose(
            scalar, model.probabilities(features[:8]), atol=2e-6
        )

    def test_probabilities_in_unit_interval(self, dataset):
        model, features = _model("llut_i", dataset)
        probs = model.probabilities(features)
        assert probs.min() >= 0 and probs.max() <= 1


class TestTiming:
    def test_sigmoid_share_reported(self, dataset, system):
        model, features = _model("llut_i", dataset)
        res = model.run(features, system)
        assert 0.1 < res.sigmoid_share < 0.9
        assert res.dot_slots > 0

    def test_poly_sigmoid_dominates_kernel(self, dataset, system):
        model, features = _model("poly", dataset)
        res = model.run(features, system)
        # Polynomial exp costs nearly as much as the 16-feature dot product.
        assert res.sigmoid_share > 0.4

    def test_pim_sigmoid_beats_host_roundtrip(self, dataset, system):
        """The Figure 1(c)-vs-1(b) comparison the paper draws: computing the
        sigmoid on the PIM core avoids a host round trip that costs more
        than the on-core evaluation."""
        pim, features = _model("llut_i", dataset)
        host, _ = _model("host_sigmoid", dataset)
        n = 30_000_000
        t_pim = pim.run(features, system, virtual_n=n)
        t_host = host.run(features, system, virtual_n=n)
        assert t_host.host_roundtrip_seconds > 0
        assert t_pim.total_seconds < t_host.total_seconds

    def test_host_variant_kernel_cheaper(self, dataset, system):
        pim, features = _model("llut_i", dataset)
        host, _ = _model("host_sigmoid", dataset)
        r_pim = pim.run(features, system)
        r_host = host.run(features, system)
        assert r_host.run.kernel_seconds < r_pim.run.kernel_seconds


class TestValidation:
    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            LogisticRegression("svm")

    def test_wrong_weight_shape(self, dataset):
        with pytest.raises(ConfigurationError):
            LogisticRegression("llut_i", n_features=8).setup(
                np.zeros(16, dtype=np.float32), 0.0
            )

    def test_run_before_setup(self, dataset, system):
        with pytest.raises(ConfigurationError):
            LogisticRegression("llut_i").run(dataset[0], system)
