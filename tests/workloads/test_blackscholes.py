"""Tests for the Blackscholes workload and its variants."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter
from repro.pim.system import PIMSystem
from repro.workloads.blackscholes import (
    VARIANTS,
    Blackscholes,
    generate_options,
    reference_call_prices,
)


@pytest.fixture(scope="module")
def batch():
    return generate_options(4000, seed=11)


@pytest.fixture(scope="module")
def reference(batch):
    return reference_call_prices(batch)


@pytest.fixture(scope="module")
def system():
    return PIMSystem()


class TestDataset:
    def test_shapes(self, batch):
        assert batch.n == 4000
        assert batch.records().shape == (4000, 5)

    def test_parameter_ranges(self, batch):
        assert batch.volatility.min() >= 0.10
        assert batch.time.max() <= 1.00
        ratio = batch.spot / batch.strike
        assert ratio.min() > 0.25 and ratio.max() < 4.0

    def test_deterministic(self):
        a = generate_options(100, seed=5)
        b = generate_options(100, seed=5)
        np.testing.assert_array_equal(a.spot, b.spot)


class TestPriceSanity:
    def test_reference_within_no_arbitrage_bounds(self, batch, reference):
        s = batch.spot.astype(np.float64)
        k = batch.strike.astype(np.float64)
        r = batch.rate.astype(np.float64)
        t = batch.time.astype(np.float64)
        intrinsic = np.maximum(s - k * np.exp(-r * t), 0.0)
        assert np.all(reference >= intrinsic - 1e-9)
        assert np.all(reference <= s + 1e-9)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_accuracy(self, variant, batch, reference):
        bs = Blackscholes(variant).setup()
        prices = bs.prices(batch).astype(np.float64)
        err = np.abs(prices - reference)
        # Prices are tens of dollars; everything should agree to < 0.01 cents.
        assert err.max() < 1e-3, variant
        rel = err / np.maximum(reference, 0.1)
        assert np.median(rel) < 1e-5, variant

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_kernel_matches_vectorized(self, variant, batch):
        bs = Blackscholes(variant).setup()
        recs = batch.records()[:12]
        ctx = CycleCounter()
        scalar = np.array([bs.kernel(ctx, r) for r in recs], dtype=np.float32)
        vec_prices = bs.prices(generate_options(4000, seed=11)).astype(np.float32)
        np.testing.assert_allclose(scalar, vec_prices[:12], rtol=2e-4, atol=2e-3)


class TestTiming:
    def test_variant_ordering(self, batch, system):
        """Figure 9's qualitative content: poly slowest, fixed fastest."""
        times = {}
        for variant in ("poly", "mlut_i", "llut_i", "llut_i_fx"):
            bs = Blackscholes(variant).setup()
            times[variant] = bs.run(batch, system).total_seconds
        assert times["poly"] > 2 * times["llut_i"]
        assert times["mlut_i"] > times["llut_i"]
        assert times["llut_i_fx"] < times["llut_i"]

    def test_fixed_full_fastest(self, batch, system):
        drop_in = Blackscholes("llut_i_fx").setup().run(batch, system)
        full = Blackscholes("fixed_full").setup().run(batch, system)
        assert full.total_seconds < drop_in.total_seconds

    def test_run_reports_transfers(self, batch, system):
        res = Blackscholes("llut_i").setup().run(batch, system)
        # 20 bytes in, 4 bytes out per option.
        assert res.host_to_pim_seconds == pytest.approx(
            5 * res.pim_to_host_seconds * system.config.pim_to_host_bw
            / system.config.host_to_pim_bw, rel=1e-6
        )


class TestValidation:
    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            Blackscholes("newton")

    def test_run_before_setup(self, batch, system):
        with pytest.raises(ConfigurationError):
            Blackscholes("llut_i").run(batch, system)

    def test_poly_variant_needs_no_tables(self):
        assert Blackscholes("poly").setup().table_bytes() == 0

    def test_lut_variant_reports_tables(self):
        assert Blackscholes("llut_i").setup().table_bytes() > 1000


class TestPutOptions:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_put_prices_match_parity(self, variant, batch):
        from repro.workloads.blackscholes import reference_put_prices
        bs = Blackscholes(variant).setup()
        puts = bs.put_prices(batch).astype(np.float64)
        ref = reference_put_prices(batch)
        assert np.abs(puts - ref).max() < 1e-3, variant

    def test_put_kernel_matches_vectorized(self, batch):
        bs = Blackscholes("llut_i").setup()
        recs = batch.records()[:8]
        ctx = CycleCounter()
        scalar = np.array([bs.kernel_put(ctx, r) for r in recs],
                          dtype=np.float32)
        np.testing.assert_allclose(scalar, bs.put_prices(batch)[:8],
                                   rtol=1e-4, atol=1e-3)

    def test_puts_within_no_arbitrage_bounds(self, batch):
        bs = Blackscholes("llut_i").setup()
        puts = bs.put_prices(batch).astype(np.float64)
        k = batch.strike.astype(np.float64)
        r = batch.rate.astype(np.float64)
        t = batch.time.astype(np.float64)
        s = batch.spot.astype(np.float64)
        intrinsic = np.maximum(k * np.exp(-r * t) - s, 0.0)
        assert np.all(puts >= intrinsic - 1e-3)
        assert np.all(puts <= k + 1e-9)
