"""Tests for the polynomial-approximation baselines."""

import math

import numpy as np
import pytest

from repro.isa.counter import CycleCounter
from repro.workloads import polynomial as poly

_F32 = np.float32


class TestPolyExp:
    def test_values(self, ctx):
        for x in [-5.0, -0.5, 0.0, 0.3, 1.0, 8.0]:
            assert float(poly.poly_exp(ctx, x)) == pytest.approx(
                math.exp(x), rel=3e-6
            ), x

    def test_vec_matches_scalar(self, rng):
        xs = rng.uniform(-10, 10, 128).astype(_F32)
        out = poly.poly_exp_vec(xs)
        ctx = CycleCounter()
        for i in range(0, 128, 13):
            assert out[i] == poly.poly_exp(ctx, xs[i])

    def test_one_multiply_per_term(self, ctx):
        poly.poly_exp(ctx, _F32(0.3))
        # 10 Horner terms plus 2 from range reduction.
        assert ctx.tally.count("fmul") == 12


class TestPolyLog:
    def test_values(self, ctx):
        for x in [0.01, 0.5, 1.0, 2.718, 100.0]:
            assert float(poly.poly_log(ctx, x)) == pytest.approx(
                math.log(x), abs=3e-6
            ), x

    def test_vec_matches_scalar(self, rng):
        xs = rng.uniform(0.01, 100, 128).astype(_F32)
        out = poly.poly_log_vec(xs)
        ctx = CycleCounter()
        for i in range(0, 128, 13):
            assert out[i] == poly.poly_log(ctx, xs[i])


class TestPolySqrt:
    def test_values(self, ctx):
        for x in [0.01, 0.25, 1.0, 2.0, 99.0]:
            assert float(poly.poly_sqrt(ctx, x)) == pytest.approx(
                math.sqrt(x), rel=2e-7
            ), x

    def test_newton_uses_divides(self, ctx):
        poly.poly_sqrt(ctx, _F32(2.0))
        assert ctx.tally.count("fdiv") == 3

    def test_vec_matches_scalar(self, rng):
        xs = rng.uniform(0.01, 100, 128).astype(_F32)
        out = poly.poly_sqrt_vec(xs)
        ctx = CycleCounter()
        for i in range(0, 128, 13):
            assert out[i] == poly.poly_sqrt(ctx, xs[i])


class TestPolyCndf:
    def test_values(self, ctx):
        from scipy.special import erf
        for x in [-3.0, -1.0, 0.0, 0.5, 2.0, 4.0]:
            expected = 0.5 * (1 + erf(x / math.sqrt(2)))
            assert float(poly.poly_cndf(ctx, x)) == pytest.approx(
                expected, abs=1e-6
            ), x

    def test_symmetry(self, ctx):
        a = float(poly.poly_cndf(ctx, 1.3))
        b = float(poly.poly_cndf(ctx, -1.3))
        assert a + b == pytest.approx(1.0, abs=1e-6)

    def test_vec_matches_scalar(self, rng):
        xs = rng.uniform(-4, 4, 64).astype(_F32)
        out = poly.poly_cndf_vec(xs)
        ctx = CycleCounter()
        for i in range(0, 64, 7):
            assert out[i] == poly.poly_cndf(ctx, xs[i])


class TestPolySigmoid:
    def test_values(self, ctx):
        for x in [-8.0, -1.0, 0.0, 1.0, 8.0]:
            expected = 1.0 / (1.0 + math.exp(-x))
            assert float(poly.poly_sigmoid(ctx, x)) == pytest.approx(
                expected, abs=2e-7
            ), x

    def test_vec_matches_scalar(self, rng):
        xs = rng.uniform(-16, 16, 64).astype(_F32)
        out = poly.poly_sigmoid_vec(xs)
        ctx = CycleCounter()
        for i in range(0, 64, 7):
            assert out[i] == poly.poly_sigmoid(ctx, xs[i])


class TestCostStructure:
    def test_poly_exp_much_costlier_than_llut(self, ctx):
        """The premise of Figure 9's poly-vs-TransPimLib comparison."""
        from repro.api import make_method
        m = make_method("exp", "llut_i", density_log2=14,
                        assume_in_range=False).setup()
        lut_slots = m.element_tally(1.7).slots
        poly.poly_exp(ctx, _F32(1.7))
        assert ctx.slots > 2 * lut_slots
