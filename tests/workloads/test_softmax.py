"""Tests for the Softmax workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pim.system import PIMSystem
from repro.workloads.softmax import (
    VARIANTS,
    Softmax,
    generate_inputs,
    reference_softmax,
)


@pytest.fixture(scope="module")
def inputs():
    return generate_inputs(4000, seed=3)


@pytest.fixture(scope="module")
def system():
    return PIMSystem()


class TestAccuracy:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_values_close_to_reference(self, variant, inputs):
        sm = Softmax(variant).setup()
        out = sm.values(inputs).astype(np.float64)
        ref = reference_softmax(inputs)
        # Relative to the largest probability.
        assert np.abs(out - ref).max() / ref.max() < 1e-3, variant

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_sums_to_one(self, variant, inputs):
        sm = Softmax(variant).setup()
        out = sm.values(inputs).astype(np.float64)
        assert out.sum() == pytest.approx(1.0, abs=1e-3)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_non_negative(self, variant, inputs):
        sm = Softmax(variant).setup()
        assert sm.values(inputs).min() >= 0.0

    def test_monotone_in_input(self, inputs):
        sm = Softmax("llut_i").setup()
        out = sm.values(inputs)
        order_in = np.argsort(inputs[:100])
        order_out = np.argsort(out[:100])
        np.testing.assert_array_equal(order_in, order_out)

    def test_invariant_to_shift(self):
        # softmax(x + c) == softmax(x): the max subtraction guarantees it.
        sm = Softmax("llut_i").setup()
        x = generate_inputs(1000, seed=9)
        a = sm.values(x)
        b = sm.values((x + np.float32(3.0)).astype(np.float32))
        np.testing.assert_allclose(a, b, rtol=1e-3, atol=1e-12)


class TestTiming:
    def test_three_phases_reported(self, inputs, system):
        res = Softmax("llut_i").setup().run(inputs, system)
        assert res.max_phase.total_seconds > 0
        assert res.exp_phase.total_seconds > 0
        assert res.scale_phase.total_seconds > 0
        assert res.total_seconds > res.exp_phase.total_seconds

    def test_exp_phase_dominates(self, inputs, system):
        res = Softmax("llut_i").setup().run(inputs, system)
        assert res.exp_phase.kernel_seconds > res.max_phase.kernel_seconds
        assert res.exp_phase.kernel_seconds > res.scale_phase.kernel_seconds

    def test_exp_phase_has_no_transfers(self, inputs, system):
        res = Softmax("llut_i").setup().run(inputs, system)
        assert res.exp_phase.host_to_pim_seconds == 0

    def test_variant_ordering(self, inputs, system):
        times = {
            v: Softmax(v).setup().run(inputs, system,
                                      virtual_n=30_000_000).total_seconds
            for v in ("poly", "llut_i", "direct_llut_i")
        }
        assert times["poly"] > 1.5 * times["llut_i"]
        assert times["direct_llut_i"] < times["llut_i"]


class TestValidation:
    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            Softmax("gumbel")

    def test_run_before_setup(self, inputs, system):
        with pytest.raises(ConfigurationError):
            Softmax("llut_i").run(inputs, system)
