"""Tests for the row-wise attention softmax workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter
from repro.pim.system import PIMSystem
from repro.workloads.attention import (
    VARIANTS,
    AttentionSoftmax,
    generate_scores,
    reference_row_softmax,
)
from repro.workloads.softmax import Softmax
from repro.workloads.softmax import generate_inputs as flat_inputs


@pytest.fixture(scope="module")
def scores():
    return generate_scores(200, row_len=64, seed=8)


@pytest.fixture(scope="module")
def system():
    return PIMSystem()


class TestAccuracy:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_rows_match_reference(self, variant, scores):
        att = AttentionSoftmax(variant).setup()
        out = att.values(scores).astype(np.float64)
        ref = reference_row_softmax(scores)
        assert np.abs(out - ref).max() < 5e-6, variant

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_rows_sum_to_one(self, variant, scores):
        att = AttentionSoftmax(variant).setup()
        sums = att.values(scores).astype(np.float64).sum(axis=1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-4)

    def test_kernel_matches_vectorized_first_prob(self, scores):
        att = AttentionSoftmax("llut_i", row_len=64).setup()
        ctx = CycleCounter()
        vec = att.values(scores[:4])
        for i in range(4):
            got = float(att.kernel(ctx, scores[i]))
            assert got == pytest.approx(float(vec[i, 0]), abs=2e-6)


class TestCoreLocality:
    def test_single_launch_vs_three_phase(self, scores, system):
        """Row-local softmax needs one launch; the global softmax needs
        three phases plus two host reductions over the same element count."""
        n_rows = 500_000          # 32M elements at row_len 64
        att = AttentionSoftmax("llut_i", row_len=64).setup()
        att_res = att.run(scores, system, virtual_rows=n_rows)

        flat = flat_inputs(2000)
        glob = Softmax("llut_i").setup()
        glob_res = glob.run(flat, system, virtual_n=n_rows * 64)

        # Same exp work, but the global version pays extra passes and
        # coordination: it must be slower end to end.
        assert att_res.total_seconds < glob_res.total_seconds

    def test_launch_overhead_counted_once(self, scores, system):
        att = AttentionSoftmax("llut_i").setup()
        res = att.run(scores, system)
        assert res.run.launch_seconds == system.config.launch_overhead_s


class TestValidation:
    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            AttentionSoftmax("flash")

    def test_tiny_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            AttentionSoftmax("llut_i", row_len=1)

    def test_run_before_setup(self, scores, system):
        with pytest.raises(ConfigurationError):
            AttentionSoftmax("llut_i").run(scores, system)
