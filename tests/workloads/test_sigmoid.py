"""Tests for the Sigmoid workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter
from repro.pim.system import PIMSystem
from repro.workloads.sigmoid import (
    VARIANTS,
    Sigmoid,
    generate_inputs,
    reference_sigmoid,
)


@pytest.fixture(scope="module")
def inputs():
    return generate_inputs(4000, seed=3)


@pytest.fixture(scope="module")
def system():
    return PIMSystem()


class TestAccuracy:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_values(self, variant, inputs):
        sg = Sigmoid(variant).setup()
        out = sg.values(inputs).astype(np.float64)
        ref = reference_sigmoid(inputs)
        assert np.abs(out - ref).max() < 5e-7, variant

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_output_in_unit_interval(self, variant, inputs):
        sg = Sigmoid(variant).setup()
        out = sg.values(inputs)
        assert out.min() >= 0.0 and out.max() <= 1.0

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_kernel_matches_vectorized(self, variant, inputs):
        sg = Sigmoid(variant).setup()
        ctx = CycleCounter()
        sample = inputs[:24]
        scalar = np.array([sg.kernel(ctx, float(x)) for x in sample],
                          dtype=np.float32)
        np.testing.assert_array_equal(scalar, sg.values(sample))

    def test_extreme_inputs(self):
        sg = Sigmoid("llut_i").setup()
        ctx = CycleCounter()
        assert float(sg.kernel(ctx, 30.0)) == pytest.approx(1.0, abs=1e-6)
        assert float(sg.kernel(ctx, -30.0)) == pytest.approx(0.0, abs=1e-6)


class TestTiming:
    def test_variant_ordering(self, inputs, system):
        # Size the run like the paper's 30M elements so compute dominates
        # the fixed launch/transfer costs.
        times = {
            v: Sigmoid(v).setup().run(inputs, system,
                                      virtual_n=30_000_000).total_seconds
            for v in ("poly", "mlut_i", "llut_i", "direct_llut_i")
        }
        assert times["poly"] > 1.5 * times["llut_i"]   # 50-75% in the paper
        assert times["mlut_i"] > times["llut_i"]
        assert times["direct_llut_i"] < times["llut_i"]  # our extension

    def test_table_bytes(self):
        assert Sigmoid("poly").setup().table_bytes() == 0
        assert Sigmoid("llut_i").setup().table_bytes() > 0


class TestValidation:
    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            Sigmoid("spline")

    def test_run_before_setup(self, inputs, system):
        with pytest.raises(ConfigurationError):
            Sigmoid("llut_i").run(inputs, system)
