"""Tests for the CPU baseline timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.cpu_model import (
    CPU_BLACKSCHOLES,
    CPU_SIGMOID,
    CPU_SOFTMAX,
    CPUModel,
)


class TestScaling:
    def test_single_thread_linear_in_n(self):
        m = CPU_SIGMOID
        assert m.seconds(2_000_000, 1) == pytest.approx(2 * m.seconds(1_000_000, 1))

    def test_multithreading_speedup(self):
        m = CPU_BLACKSCHOLES
        t1 = m.seconds(10_000_000, 1)
        t32 = m.seconds(10_000_000, 32)
        assert t32 < t1 / 20  # near-linear scaling with efficiency loss

    def test_efficiency_discount(self):
        m = CPUModel("x", sec_per_element_1t=1e-6, bytes_per_element=1,
                     parallel_efficiency=0.5, memory_bandwidth=1e18)
        assert m.seconds(1000, 2) == pytest.approx(m.seconds(1000, 1))

    def test_memory_bandwidth_floor(self):
        m = CPUModel("x", sec_per_element_1t=1e-12, bytes_per_element=8,
                     memory_bandwidth=1e9)
        # Compute is negligible; time is bandwidth-bound.
        assert m.seconds(1_000_000, 32) == pytest.approx(8e-3)

    def test_invalid_threads(self):
        with pytest.raises(ConfigurationError):
            CPU_SOFTMAX.seconds(100, 0)


class TestCalibration:
    def test_blackscholes_heavier_than_sigmoid(self):
        assert CPU_BLACKSCHOLES.sec_per_element_1t > \
            5 * CPU_SIGMOID.sec_per_element_1t

    def test_paper_scale_sanity(self):
        # 10M options on 32 threads lands in the ~100ms regime of Figure 9.
        t = CPU_BLACKSCHOLES.seconds(10_000_000, 32)
        assert 0.02 < t < 1.0
