"""Tests for Pareto-frontier extraction."""


from repro.analysis.pareto import (
    dominates,
    frontier_methods_by_accuracy,
    frontier_report,
    pareto_frontier,
)
from repro.analysis.sweep import SweepPoint


def _pt(method, rmse, cycles, mem, param="p"):
    return SweepPoint(
        function="sin", method=method, placement="mram", param=param,
        rmse=rmse, max_error=rmse * 2, cycles_per_element=cycles,
        setup_seconds=1e-5, table_bytes=mem,
    )


class TestDominance:
    def test_strict_dominance(self):
        a = _pt("a", 1e-7, 100, 1000)
        b = _pt("b", 1e-6, 200, 2000)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_incomparable(self):
        a = _pt("a", 1e-7, 500, 1000)   # accurate but slow
        b = _pt("b", 1e-5, 100, 1000)   # fast but coarse
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_equal_points_do_not_dominate(self):
        a = _pt("a", 1e-6, 100, 100)
        b = _pt("b", 1e-6, 100, 100)
        assert not dominates(a, b)

    def test_epsilon_dominance(self):
        # a is 1% worse in memory but 5x faster: dominates at 2% tolerance.
        a = _pt("a", 1e-6, 100, 101)
        b = _pt("b", 1e-6, 500, 100)
        assert not dominates(a, b)
        assert dominates(a, b, tolerance=0.02)


class TestFrontier:
    def test_dominated_points_removed(self):
        pts = [
            _pt("good", 1e-7, 100, 1000),
            _pt("bad", 1e-6, 200, 2000),
            _pt("other", 1e-8, 500, 4000),
        ]
        frontier = pareto_frontier(pts)
        methods = {p.method for p in frontier}
        assert methods == {"good", "other"}

    def test_sorted_by_decreasing_rmse(self):
        pts = [_pt("a", 1e-8, 500, 100), _pt("b", 1e-4, 50, 10)]
        frontier = pareto_frontier(pts)
        assert frontier[0].rmse > frontier[-1].rmse

    def test_real_sweep_frontier(self):
        """At matched table spacing, the M-LUT is dominated by the L-LUT
        (same accuracy, same memory, fewer cycles — Key Takeaway 1)."""
        import math

        from repro.analysis.sweep import default_inputs, sweep_method
        inputs = default_inputs("sin", n=2048)
        pts = []
        pts += sweep_method("sin", "llut", "density_log2", (10, 14),
                            inputs=inputs, sample_size=8)
        # Equal-spacing M-LUTs: size = range * density + 1.
        sizes = tuple(int(math.ceil(2 * math.pi * 2 ** n)) + 1
                      for n in (10, 14))
        pts += sweep_method("sin", "mlut", "size", sizes,
                            inputs=inputs, sample_size=8)
        # 2% epsilon-dominance absorbs the guard-entry rounding noise.
        frontier = pareto_frontier(pts, tolerance=0.02)
        methods = {p.method for p in frontier}
        assert "llut" in methods
        assert all(p.method != "mlut" for p in frontier)


class TestReport:
    def test_bands_and_report(self):
        pts = [_pt("a", 5e-5, 100, 10), _pt("b", 5e-7, 300, 100)]
        bands = frontier_methods_by_accuracy(pts)
        assert any("a" in m for m in bands.values())
        out = frontier_report(pts)
        assert "Pareto frontier" in out
        assert "rmse band" in out
