"""Tests for the parameter-sweep engine behind Figures 5-7."""

import numpy as np
import pytest

from repro.analysis.sweep import (
    SINE_SWEEPS,
    WRAM_TABLE_BUDGET,
    default_inputs,
    sweep_method,
)


class TestDefaultInputs:
    def test_natural_range(self):
        xs = default_inputs("sin", n=1024)
        assert xs.dtype == np.float32
        assert xs.min() >= 0 and xs.max() < 2 * np.pi + 1e-3

    def test_bench_domain(self):
        xs = default_inputs("exp", n=1024, in_natural_range=False)
        assert xs.min() < -5 and xs.max() > 5

    def test_deterministic(self):
        np.testing.assert_array_equal(
            default_inputs("sin", n=64), default_inputs("sin", n=64)
        )


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        inputs = default_inputs("sin", n=4096)
        return sweep_method(
            "sin", "llut_i", "density_log2", (6, 9, 12),
            placement="mram", inputs=inputs,
        )

    def test_point_per_param(self, points):
        assert [p.param for p in points] == [
            "density_log2=6", "density_log2=9", "density_log2=12"
        ]

    def test_rmse_decreases(self, points):
        rmses = [p.rmse for p in points]
        assert rmses[0] > rmses[1] > rmses[2]

    def test_cycles_flat_for_luts(self, points):
        cycles = [p.cycles_per_element for p in points]
        assert max(cycles) < 1.1 * min(cycles)

    def test_setup_grows(self, points):
        setups = [p.setup_seconds for p in points]
        assert setups[2] > setups[0]

    def test_memory_grows(self, points):
        assert points[2].table_bytes > 8 * points[0].table_bytes

    def test_wram_skips_oversized(self):
        inputs = default_inputs("sin", n=1024)
        points = sweep_method(
            "sin", "llut", "density_log2", (8, 18),
            placement="wram", inputs=inputs,
        )
        # density 2^18 over [0, 2pi) is ~1.6M entries: too big for WRAM.
        assert len(points) == 1
        assert points[0].table_bytes <= WRAM_TABLE_BUDGET

    def test_cordic_cycles_grow(self):
        inputs = default_inputs("sin", n=1024)
        points = sweep_method(
            "sin", "cordic", "iterations", (8, 16, 24), inputs=inputs,
        )
        cycles = [p.cycles_per_element for p in points]
        assert cycles[0] < cycles[1] < cycles[2]


class TestSweepConfigs:
    def test_all_figure5_methods_configured(self):
        # The paper's eight (fixed-point as L-LUT variants) plus the
        # polynomial baseline extension.
        assert set(SINE_SWEEPS) == {
            "cordic", "cordic_lut", "mlut", "mlut_i",
            "llut", "llut_i", "llut_fx", "llut_i_fx", "poly",
        }
