"""Assert the qualitative observations of Section 4.2.1 (Figure 5).

These tests pin the reproduction's headline claims: the relative method
ordering that the paper's key takeaways rest on.  They run a reduced sweep
(fewer points, fewer traced samples) to stay fast.
"""

import pytest

from repro.analysis.sweep import default_inputs, sweep_method


@pytest.fixture(scope="module")
def inputs():
    return default_inputs("sin", n=4096)


def _one(inputs, method, param_name, value, placement="mram", extra=None):
    points = sweep_method("sin", method, param_name, (value,),
                          placement=placement, inputs=inputs,
                          sample_size=16, extra_params=extra)
    return points[0]


class TestObservation1LutOrdering:
    """L-LUT beats M-LUT; the float-multiply count decides the cost."""

    def test_non_interpolated_llut_cuts_mlut_by_most(self, inputs):
        llut = _one(inputs, "llut", "density_log2", 14)
        mlut = _one(inputs, "mlut", "size", 1 << 14)
        reduction = 1 - llut.cycles_per_element / mlut.cycles_per_element
        assert reduction > 0.6  # paper: ~80%

    def test_interpolated_llut_cuts_mlut(self, inputs):
        llut = _one(inputs, "llut_i", "density_log2", 11)
        mlut = _one(inputs, "mlut_i", "size", (1 << 11) + 1)
        reduction = 1 - llut.cycles_per_element / mlut.cycles_per_element
        assert reduction > 0.15  # paper: ~50%; see EXPERIMENTS.md

    def test_fixed_interpolated_at_least_doubles(self, inputs):
        fx = _one(inputs, "llut_i_fx", "density_log2", 11)
        fl = _one(inputs, "llut_i", "density_log2", 11)
        assert fl.cycles_per_element > 2 * fx.cycles_per_element

    def test_fixed_non_interpolated_does_not_improve(self, inputs):
        """Neither variant multiplies; the fixed one pays conversions."""
        fx = _one(inputs, "llut_fx", "density_log2", 14)
        fl = _one(inputs, "llut", "density_log2", 14)
        assert 0.5 < fx.cycles_per_element / fl.cycles_per_element < 2.5


class TestObservation2CordicGrowth:
    def test_cordic_grows_with_accuracy(self, inputs):
        lo = _one(inputs, "cordic", "iterations", 12)
        hi = _one(inputs, "cordic", "iterations", 28)
        assert hi.cycles_per_element > 1.8 * lo.cycles_per_element
        assert hi.rmse < lo.rmse / 100

    def test_cordic_lut_faster_than_cordic(self, inputs):
        cordic = _one(inputs, "cordic", "iterations", 24)
        hybrid = _one(inputs, "cordic_lut", "iterations", 24,
                      extra={"lut_bits": 8})
        assert hybrid.cycles_per_element < cordic.cycles_per_element


class TestObservation3BestTradeoff:
    def test_interpolated_llut_dominates_cordic_at_high_accuracy(self, inputs):
        llut = _one(inputs, "llut_i", "density_log2", 12)
        cordic = _one(inputs, "cordic", "iterations", 28)
        assert llut.rmse < cordic.rmse
        assert llut.cycles_per_element < cordic.cycles_per_element / 3


class TestObservation4Placement:
    def test_mram_close_to_wram(self, inputs):
        """No significant MRAM-vs-WRAM difference (DMA latency hidden)."""
        mram = _one(inputs, "llut_i", "density_log2", 10, placement="mram")
        wram = _one(inputs, "llut_i", "density_log2", 10, placement="wram")
        assert mram.cycles_per_element < 1.1 * wram.cycles_per_element

    def test_wram_capacity_limits_accuracy(self, inputs):
        """The WRAM curve must stop earlier than the MRAM one."""
        from repro.analysis.sweep import sweep_method
        densities = (10, 14, 18)
        mram = sweep_method("sin", "llut", "density_log2", densities,
                            placement="mram", inputs=inputs, sample_size=8)
        wram = sweep_method("sin", "llut", "density_log2", densities,
                            placement="wram", inputs=inputs, sample_size=8)
        assert len(wram) < len(mram)
        assert min(p.rmse for p in mram) < min(p.rmse for p in wram)


class TestObservation5AccuracyFloor:
    def test_interpolated_llut_saturates(self, inputs):
        a = _one(inputs, "llut_i", "density_log2", 13)
        b = _one(inputs, "llut_i", "density_log2", 15)
        # Denser table no longer buys accuracy: the float32 floor.
        assert b.rmse > a.rmse / 3
        assert a.rmse < 1e-7
