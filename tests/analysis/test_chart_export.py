"""Tests for ASCII charts and data export."""

import csv
import io
import json

import pytest

from repro.analysis.chart import scatter_chart
from repro.analysis.export import (
    fig9_to_json,
    sweep_to_csv,
    sweep_to_json,
    write_csv,
    write_json,
)
from repro.analysis.figures import Fig9Row
from repro.analysis.sweep import SweepPoint
from repro.errors import ConfigurationError


def _pt(method="llut", rmse=1e-5, cycles=120.0):
    return SweepPoint(
        function="sin", method=method, placement="mram", param="d=10",
        rmse=rmse, max_error=2 * rmse, cycles_per_element=cycles,
        setup_seconds=1e-4, table_bytes=4096,
    )


class TestScatterChart:
    def test_basic_render(self):
        out = scatter_chart({"a": [(1e-6, 100), (1e-4, 100)],
                             "b": [(1e-6, 5000), (1e-4, 2000)]})
        assert "o a" in out and "x b" in out
        assert "log" in out

    def test_markers_placed(self):
        out = scatter_chart({"only": [(1.0, 1.0), (10.0, 10.0)]},
                            width=20, height=8)
        assert out.count("o") >= 2 + 1  # two points + legend marker

    def test_dimensions(self):
        out = scatter_chart({"s": [(1, 1), (100, 100)]}, width=30, height=10)
        chart_lines = [l for l in out.splitlines() if "|" in l]
        assert len(chart_lines) == 10

    def test_extremes_at_edges(self):
        out = scatter_chart({"s": [(1, 1), (100, 100)]}, width=30, height=10)
        lines = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        assert lines[0].rstrip().endswith("o")   # max y, max x: top-right
        assert lines[-1].lstrip().startswith("o")  # min: bottom-left

    def test_log_requires_positive(self):
        with pytest.raises(ConfigurationError):
            scatter_chart({"s": [(0.0, 1.0), (1.0, 2.0)]})

    def test_linear_axes_allow_zero(self):
        out = scatter_chart({"s": [(0.0, 0.0), (1.0, 1.0)]},
                            log_x=False, log_y=False)
        assert "lin" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            scatter_chart({})

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            scatter_chart({"s": [(1, 1)]}, width=4, height=2)


class TestExport:
    def test_json_roundtrip(self):
        points = [_pt(), _pt("mlut", 1e-4, 560.0)]
        data = json.loads(sweep_to_json(points))
        assert len(data) == 2
        assert data[0]["method"] == "llut"
        assert data[1]["cycles_per_element"] == 560.0

    def test_csv_header_and_rows(self):
        text = sweep_to_csv([_pt()])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["method"] == "llut"
        assert float(rows[0]["rmse"]) == 1e-5

    def test_csv_empty(self):
        assert sweep_to_csv([]) == ""

    def test_fig9_json(self):
        rows = [Fig9Row("sigmoid", "cpu_32t", 0.06)]
        data = json.loads(fig9_to_json(rows))
        assert data[0]["workload"] == "sigmoid"

    def test_file_writers(self, tmp_path):
        points = [_pt()]
        write_json(tmp_path / "p.json", points)
        write_csv(tmp_path / "p.csv", points)
        assert json.loads((tmp_path / "p.json").read_text())[0]["param"] == "d=10"
        assert "llut" in (tmp_path / "p.csv").read_text()


class TestChartOnRealSweep:
    def test_fig5_shape_visible(self):
        from repro.analysis.sweep import default_inputs, sweep_method
        inputs = default_inputs("sin", n=1024)
        cordic = sweep_method("sin", "cordic", "iterations", (8, 16, 24),
                              inputs=inputs, sample_size=8)
        llut = sweep_method("sin", "llut", "density_log2", (10, 14, 18),
                            inputs=inputs, sample_size=8)
        out = scatter_chart({
            "cordic": [(p.rmse, p.cycles_per_element) for p in cordic],
            "llut": [(p.rmse, p.cycles_per_element) for p in llut],
        }, x_label="rmse", y_label="cycles/elem")
        assert "cordic" in out and "llut" in out
