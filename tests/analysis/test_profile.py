"""Tests for the error-profile diagnostic."""

import pytest

from repro.analysis.profile import error_profile, profile_report
from repro.api import make_method


class TestProfile:
    def test_bins_cover_domain(self):
        m = make_method("sin", "llut_i", density_log2=10,
                        assume_in_range=False).setup()
        bins = error_profile(m, n_bins=8)
        assert len(bins) == 8
        assert bins[0].lo == pytest.approx(m.spec.bench_domain[0])
        assert bins[-1].hi == pytest.approx(m.spec.bench_domain[1])
        for a, b in zip(bins, bins[1:]):
            assert a.hi == pytest.approx(b.lo)

    def test_peak_at_least_rms(self):
        m = make_method("sin", "llut", density_log2=10,
                        assume_in_range=False).setup()
        for b in error_profile(m, n_bins=8):
            assert b.peak >= b.rms

    def test_finds_the_dlut_gap(self):
        """The diagnostic that motivated this tool: D-LUT's error spike in
        its structural gap below 2^e_min."""
        m = make_method("tanh", "dlut", mant_bits=8, e_min=-3,
                        assume_in_range=False).setup()
        bins = error_profile(m, n_bins=32, domain=(-1.0, 1.0))
        worst = max(bins, key=lambda b: b.rms)
        # The worst bin straddles zero, where inputs clamp to the first cell.
        assert worst.lo < 0.125 and worst.hi > -0.125

    def test_finds_atanh_pole_pressure(self):
        m = make_method("atanh", "llut_i", density_log2=10,
                        assume_in_range=False).setup()
        bins = error_profile(m, n_bins=16)
        assert bins[-1].rms > 10 * bins[8].rms  # error concentrates at +0.95

    def test_custom_domain(self):
        m = make_method("exp", "llut_i", density_log2=12,
                        assume_in_range=False).setup()
        bins = error_profile(m, n_bins=4, domain=(0.0, 1.0))
        assert bins[0].lo == 0.0 and bins[-1].hi == 1.0

    def test_report_renders(self):
        m = make_method("sin", "llut_i", density_log2=10,
                        assume_in_range=False).setup()
        out = profile_report(m, n_bins=8)
        assert "error profile" in out
        assert "#" in out  # at least one bar
