"""Tests for the instruction-breakdown analysis."""

import numpy as np
import pytest

from repro.analysis.breakdown import breakdown, breakdown_report
from repro.api import make_method


@pytest.fixture(scope="module")
def inputs():
    return np.random.default_rng(2).uniform(0, 6.28, 32).astype(np.float32)


class TestBreakdown:
    def test_shares_sum_to_one(self, inputs):
        m = make_method("sin", "llut_i", density_log2=10).setup()
        shares = breakdown(m, inputs)
        assert sum(s.share for s in shares) == pytest.approx(1.0)

    def test_slots_sum_to_tally(self, inputs):
        m = make_method("sin", "mlut_i", size=1025).setup()
        shares = breakdown(m, inputs)
        total = sum(s.slots_per_element for s in shares)
        assert total == pytest.approx(m.mean_slots(inputs), rel=1e-6)

    def test_sorted_descending(self, inputs):
        m = make_method("sin", "cordic", iterations=16).setup()
        shares = breakdown(m, inputs)
        slots = [s.slots_per_element for s in shares]
        assert slots == sorted(slots, reverse=True)

    def test_fmul_dominates_interpolated_lut(self, inputs):
        """Section 4.2.1: the float multiply count determines the cost."""
        m = make_method("sin", "llut_i", density_log2=10).setup()
        shares = breakdown(m, inputs)
        assert shares[0].op == "fmul"
        assert shares[0].share > 0.3

    def test_fadd_dominates_float_cordic(self, inputs):
        m = make_method("sin", "cordic", iterations=24).setup()
        top = breakdown(m, inputs)[0]
        assert top.op in ("fadd", "fsub")

    def test_no_multiplies_in_plain_llut(self, inputs):
        m = make_method("sin", "llut", density_log2=10).setup()
        ops = {s.op for s in breakdown(m, inputs)}
        assert "fmul" not in ops

    def test_report_renders(self, inputs):
        m = make_method("sin", "llut", density_log2=10).setup()
        out = breakdown_report(m, inputs)
        assert "instruction breakdown" in out
        assert "total" in out
