"""Tests for the figure/table harnesses (small configurations)."""

import pytest

from repro.analysis.figures import (
    fig8_data,
    fig8_report,
    fig9_data,
    fig9_report,
    table2_report,
)
from repro.analysis.report import format_series, format_table


class TestReportFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "----" in lines[1]

    def test_format_series(self):
        out = format_series("s", [(1.0, 2.0)], "rmse", "cycles")
        assert "rmse -> cycles" in out


class TestTable2:
    def test_contains_all_methods_and_functions(self):
        out = table2_report()
        for m in ("cordic", "mlut_i", "llut_i_fx", "dllut"):
            assert m in out
        for f in ("sin", "gelu", "sqrt"):
            assert f in out

    def test_marks(self):
        out = table2_report()
        # dlut row must not support sin: find the row and check.
        row = next(line for line in out.splitlines()
                   if line.startswith("dlut "))
        assert "." in row and "x" in row


class TestFig8:
    def test_orderings(self):
        data = fig8_data(n_samples=64)
        assert set(data) == {"sin", "exp", "log", "sqrt"}
        assert data["sqrt"] < data["log"] < data["sin"]

    def test_report_renders(self):
        out = fig8_report(fig8_data(n_samples=16))
        assert "Figure 8" in out and "sqrt" in out


class TestFig9:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig9_data(n_blackscholes=1_000_000, n_vector=3_000_000,
                         trace_elements=2000)

    def test_all_configurations_present(self, rows):
        combos = {(r.workload, r.config) for r in rows}
        assert ("blackscholes", "pim_llut_i_fx") in combos
        assert ("sigmoid", "cpu_32t") in combos
        assert ("softmax", "pim_poly") in combos
        assert len(combos) == len(rows)

    def _time(self, rows, workload, config):
        return next(r.seconds for r in rows
                    if r.workload == workload and r.config == config)

    def test_cpu_32t_beats_cpu_1t(self, rows):
        for wl in ("blackscholes", "sigmoid", "softmax"):
            assert self._time(rows, wl, "cpu_32t") < \
                self._time(rows, wl, "cpu_1t") / 10

    def test_poly_baseline_slowest_pim(self, rows):
        for wl in ("blackscholes", "sigmoid", "softmax"):
            assert self._time(rows, wl, "pim_poly") > \
                self._time(rows, wl, "pim_llut_i")

    def test_blackscholes_fixed_beats_cpu(self, rows):
        """The paper's headline: fixed-point Blackscholes outperforms the
        32-thread CPU baseline."""
        assert self._time(rows, "blackscholes", "pim_llut_i_fx") < \
            self._time(rows, "blackscholes", "cpu_32t")

    def test_sigmoid_cpu_ahead_but_competitive(self, rows):
        """Figure 9: the 32-thread CPU is ~2x faster than PIM for sigmoid."""
        ratio = self._time(rows, "sigmoid", "pim_llut_i") / \
            self._time(rows, "sigmoid", "cpu_32t")
        assert 1.0 < ratio < 5.0

    def test_pim_beats_single_thread_cpu(self, rows):
        for wl in ("blackscholes", "sigmoid", "softmax"):
            assert self._time(rows, wl, "pim_llut_i") < \
                self._time(rows, wl, "cpu_1t")

    def test_report_renders(self, rows):
        out = fig9_report(rows)
        assert "Figure 9" in out
        assert "blackscholes" in out


class TestFig567Reports:
    @pytest.fixture(scope="class")
    def mini_points(self):
        from repro.analysis.sweep import default_inputs, sweep_method
        inputs = default_inputs("sin", n=1024)
        pts = []
        pts += sweep_method("sin", "llut", "density_log2", (10, 14),
                            inputs=inputs, sample_size=8)
        pts += sweep_method("sin", "cordic", "iterations", (8, 16),
                            inputs=inputs, sample_size=8)
        return pts

    def test_fig5_report(self, mini_points):
        from repro.analysis.figures import fig5_report
        out = fig5_report(mini_points)
        assert "Figure 5" in out and "cycles/elem" in out
        assert "llut" in out and "cordic" in out

    def test_fig6_report(self, mini_points):
        from repro.analysis.figures import fig6_report
        out = fig6_report(mini_points)
        assert "Figure 6" in out and "setup_s" in out

    def test_fig7_report(self, mini_points):
        from repro.analysis.figures import fig7_report
        out = fig7_report(mini_points)
        assert "Figure 7" in out and "bytes" in out
