"""Tests for the ablation studies."""

import pytest

from repro.analysis.ablation import (
    EXPECTED_ORDERINGS,
    cost_sensitivity,
    idealized_comparison,
    method_ordering,
    tasklet_scaling,
)


class TestMethodOrdering:
    @pytest.fixture(scope="class")
    def cycles(self):
        return method_ordering()

    def test_all_methods_present(self, cycles):
        assert len(cycles) == 8

    def test_expected_orderings_hold(self, cycles):
        for fast, slow in EXPECTED_ORDERINGS:
            assert cycles[fast] < cycles[slow], (fast, slow)


class TestCostSensitivity:
    def test_orderings_robust_to_2x_miscalibration(self):
        results = cost_sensitivity(scales=(0.5, 2.0))
        for r in results:
            assert all(r["orderings"].values()), r["scale"]


class TestTaskletScaling:
    @pytest.fixture(scope="class")
    def rows(self):
        return tasklet_scaling(tasklet_counts=(1, 4, 11, 16))

    def test_saturation_at_eleven(self, rows):
        mram = {r["tasklets"]: r["cycles_per_element"]
                for r in rows if r["placement"] == "mram"}
        assert mram[1] > 2 * mram[11]
        assert mram[16] == pytest.approx(mram[11], rel=0.02)

    def test_mram_matches_wram_when_saturated(self, rows):
        at16 = {r["placement"]: r["cycles_per_element"]
                for r in rows if r["tasklets"] == 16}
        assert at16["mram"] < 1.1 * at16["wram"]

    def test_mram_penalty_visible_single_tasklet(self, rows):
        at1 = {r["placement"]: r["cycles_per_element"]
               for r in rows if r["tasklets"] == 1}
        assert at1["mram"] > at1["wram"]


class TestIdealizedHardware:
    def test_fp_hardware_compresses_the_gap(self):
        res = idealized_comparison()
        gap_upmem = res["upmem"]["mlut_i"] / res["upmem"]["llut"]
        gap_ideal = res["idealized_fp"]["mlut_i"] / res["idealized_fp"]["llut"]
        # With single-cycle floats, removing multiplies buys much less.
        assert gap_ideal < gap_upmem / 2
