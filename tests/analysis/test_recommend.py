"""Tests for the method recommender (the key takeaways as a policy)."""

import pytest

from repro.analysis.recommend import Requirements, recommend
from repro.errors import ConfigurationError


class TestBasicOperation:
    def test_returns_ranked_candidates(self):
        recs = recommend("sin", Requirements(rmse_target=1e-5), top_k=3)
        assert 1 <= len(recs) <= 3
        totals = [r.total_seconds for r in recs]
        assert totals == sorted(totals)

    def test_all_meet_accuracy(self):
        recs = recommend("sin", Requirements(rmse_target=1e-5))
        assert all(r.rmse <= 1e-5 for r in recs)

    def test_all_meet_memory_budget(self):
        req = Requirements(rmse_target=1e-5, memory_budget=64 * 1024)
        recs = recommend("sin", req)
        assert all(r.table_bytes <= 64 * 1024 for r in recs)

    def test_unreachable_raises(self):
        with pytest.raises(ConfigurationError):
            recommend("sin", Requirements(rmse_target=1e-15))

    def test_rationale_present(self):
        recs = recommend("tanh", Requirements(rmse_target=1e-5))
        assert all(isinstance(r.rationale, str) and r.rationale for r in recs)


class TestTakeawayLogic:
    def test_few_evaluations_favor_cordic(self):
        """Key Takeaway 2: CORDIC wins when the kernel computes only a few
        transcendental operations (its setup is flat)."""
        few = recommend("sin", Requirements(rmse_target=1e-5, evaluations=5))
        assert few[0].method in ("cordic", "cordic_fx", "cordic_lut")

    def test_many_evaluations_favor_luts(self):
        """Key Takeaway 1: L-LUTs win for throughput-bound kernels."""
        many = recommend("sin", Requirements(rmse_target=1e-5,
                                             evaluations=100_000_000))
        assert "lut" in many[0].method or many[0].method == "cordic_fx"
        assert many[0].cycles_per_element < 1500

    def test_tiny_memory_budget_excludes_big_tables(self):
        """Key Takeaway 3: CORDIC under tight memory at high accuracy."""
        req = Requirements(rmse_target=1e-6, memory_budget=512)
        recs = recommend("sin", req)
        assert all(r.table_bytes <= 512 for r in recs)
        assert recs[0].method.startswith("cordic")

    def test_activation_functions_get_dlut_family(self):
        """Key Takeaway 4: D-LUT/DL-LUT for tanh-shaped functions."""
        recs = recommend("tanh", Requirements(rmse_target=1e-5,
                                              evaluations=100_000_000),
                         top_k=3)
        assert any("dlut" in r.method or "dllut" in r.method for r in recs)

    def test_wram_only_respects_budget(self):
        from repro.analysis.sweep import WRAM_TABLE_BUDGET
        req = Requirements(rmse_target=1e-4, wram_only=True)
        recs = recommend("sin", req)
        assert all(r.table_bytes <= WRAM_TABLE_BUDGET for r in recs)
