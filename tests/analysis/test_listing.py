"""Tests for kernel listings."""


from repro.analysis.listing import kernel_listing, listing_report
from repro.api import make_method


class TestListing:
    def test_llut_sequence(self):
        m = make_method("sin", "llut", density_log2=10,
                        placement="wram").setup()
        ops = [op for op, _, _ in kernel_listing(m, 1.0)]
        # The documented non-interpolated L-LUT sequence.
        assert ops[0] == "fadd"         # magic add
        assert "bitcast" in ops
        assert "iand" in ops
        assert "wram_read" in ops
        assert "fmul" not in ops        # the whole point

    def test_offsets_accumulate(self):
        m = make_method("sin", "llut_i", density_log2=10).setup()
        trace = kernel_listing(m, 1.0)
        total = sum(s for _, s, _ in trace)
        assert total == m.element_tally(1.0).slots

    def test_report_renders_and_truncates(self):
        m = make_method("sin", "cordic", iterations=24).setup()
        out = listing_report(m, 1.0, max_rows=10)
        assert "kernel listing" in out
        assert "more ops" in out
        assert "total" in out

    def test_dma_column_for_mram(self):
        m = make_method("sin", "llut", density_log2=10,
                        placement="mram").setup()
        out = listing_report(m, 1.0)
        assert "dma" in out
        assert "mram_read" in out
