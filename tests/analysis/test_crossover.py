"""Tests for the CORDIC-vs-LUT amortization crossover (Key Takeaway 2)."""

import pytest

from repro.analysis.crossover import amortization_crossover
from repro.analysis.sweep import default_inputs, sweep_method


@pytest.fixture(scope="module")
def points():
    inputs = default_inputs("sin", n=4096)
    pts = []
    pts += sweep_method("sin", "cordic", "iterations", (20, 24, 28, 32),
                        inputs=inputs, sample_size=8)
    pts += sweep_method("sin", "llut_i", "density_log2", (9, 11, 13),
                        inputs=inputs, sample_size=8)
    return pts


class TestCrossover:
    def test_exists_at_high_accuracy(self, points):
        res = amortization_crossover(points, rmse_target=1e-7)
        assert res is not None

    def test_order_of_magnitude_matches_paper(self, points):
        """The paper reports ~40 operations; we accept the same decade."""
        res = amortization_crossover(points, rmse_target=1e-7)
        assert 3 <= res.elements_to_amortize <= 400

    def test_components_consistent(self, points):
        res = amortization_crossover(points, rmse_target=1e-7)
        assert res.cycles_flat > res.cycles_fast
        assert res.setup_fast_s > res.setup_flat_s

    def test_none_when_unreachable(self, points):
        assert amortization_crossover(points, rmse_target=1e-15) is None
