"""Golden regression tests: exact values pinned for key configurations.

The library is fully deterministic (seeded inputs, exact float32 semantics,
integer cycle costs), so accuracy and per-element slots for a fixed
configuration are *exact* expectations, not tolerances.  Any semantic change
— a different rounding mode, a reordered float expression, a cost-model
edit — shows up here before it silently shifts the reproduced figures.

If a change is intentional (e.g. retuning OpCosts), update these constants
and the affected EXPERIMENTS.md entries together.
"""

import numpy as np
import pytest

from repro.analysis.sweep import default_inputs
from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function

#: (method, params, exact RMSE over the seeded 2^16 inputs, slots at x=1.0)
GOLDEN_SINE = [
    ("llut", {"density_log2": 12}, 4.963091208006544e-05, 114),
    ("llut_i", {"density_log2": 11}, 2.4368172155101102e-08, 995),
    ("llut_i_fx", {"density_log2": 11}, 2.141022711192349e-08, 281),
    ("mlut", {"size": 4096}, 0.00031319491399894265, 560),
    ("cordic", {"iterations": 24}, 8.398394570083223e-08, 5815),
    ("poly", {"degree": 12}, 1.4463831883455122e-07, 6500),
    ("slut_i", {"target_rmse": 1e-07, "seg_bits": 4},
     7.037527561024621e-08, 1206),
    ("cordic_fx", {"iterations": 24}, 5.101572190034314e-08, 667),
]


#: (function, method, params, exact RMSE over the seeded 2^16 inputs,
#:  slots at x=1.0) — the sine pins extended across the function families:
#: exp and log (the reducers' exponent/mantissa splits), tanh (D-LUT entry
#: point and fixed-point L-LUT), and GELU (direct tabulation).
GOLDEN_OTHER = [
    ("exp", "llut_i", {"density_log2": 10}, 1.3420320641307603e-07, 996),
    ("exp", "cordic", {"iterations": 24}, 2.886290118671918e-07, 5830),
    ("exp", "mlut", {"size": 4096}, 7.208590306395383e-05, 561),
    ("log", "llut_i", {"density_log2": 10}, 4.90662656809135e-08, 995),
    ("log", "cordic", {"iterations": 24}, 2.7844261622943117e-07, 6627),
    ("tanh", "dlut_i", {"mant_bits": 8}, 2.425724124867243e-07, 695),
    ("tanh", "cordic", {"iterations": 24}, 5.423243564887795e-08, 6461),
    ("tanh", "llut_i_fx", {"density_log2": 11}, 1.8022809140069713e-08, 281),
    ("gelu", "dlut_i", {"mant_bits": 8}, 1.9217859434319067e-07, 695),
    ("gelu", "mlut_i", {"size": 4097}, 1.11658885183225e-07, 1329),
]


@pytest.fixture(scope="module")
def inputs():
    return default_inputs("sin")


def _assert_golden(function, method, params, rmse, slots, inputs):
    spec = get_function(function)
    m = make_method(function, method, **params).setup()
    rep = measure(m.evaluate_vec, spec.reference, inputs)
    assert rep.rmse == rmse, (
        f"{function}/{method} RMSE drifted: {rep.rmse!r} != {rmse!r} — "
        "semantic change?"
    )
    assert m.element_tally(1.0).slots == slots, (
        f"{function}/{method} cost drifted — cost model or instruction "
        "sequence changed"
    )


@pytest.mark.parametrize("method,params,rmse,slots", GOLDEN_SINE,
                         ids=[g[0] for g in GOLDEN_SINE])
def test_golden_sine_configuration(method, params, rmse, slots, inputs):
    _assert_golden("sin", method, params, rmse, slots, inputs)


@pytest.mark.parametrize("function,method,params,rmse,slots", GOLDEN_OTHER,
                         ids=[f"{g[0]}-{g[1]}" for g in GOLDEN_OTHER])
def test_golden_other_functions(function, method, params, rmse, slots):
    _assert_golden(function, method, params, rmse, slots,
                   default_inputs(function))


def test_golden_blackscholes_price():
    """One pinned option price through the full llut_i kernel."""
    from repro.workloads.blackscholes import Blackscholes, generate_options
    batch = generate_options(4, seed=7)
    bs = Blackscholes("llut_i").setup()
    prices = bs.prices(batch)
    # Deterministic float32 pipeline: exact expectations.
    reference = np.array(prices, dtype=np.float32)  # self-consistency shape
    assert prices.dtype == np.float32
    from repro.workloads.blackscholes import reference_call_prices
    err = np.abs(prices.astype(np.float64) - reference_call_prices(batch))
    assert err.max() < 1e-3


def test_golden_determinism_across_runs(inputs):
    """Two fresh constructions produce bit-identical outputs."""
    a = make_method("sin", "llut_i", density_log2=11).setup()
    b = make_method("sin", "llut_i", density_log2=11).setup()
    np.testing.assert_array_equal(a.evaluate_vec(inputs),
                                  b.evaluate_vec(inputs))
