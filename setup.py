"""Legacy setup shim: enables editable installs where pep517 tooling is absent."""
from setuptools import setup

setup()
